//! Two-phase primal simplex for linear programs with bounded variables.
//!
//! The implementation is a *revised* simplex that maintains a dense explicit
//! basis inverse, supports variables that are nonbasic at either their lower
//! or upper bound (so branch-and-bound bound fixing and binary variables do
//! not require extra rows), performs bound flips, falls back to Bland's rule
//! under degeneracy to guarantee termination, and periodically refactorizes
//! the basis inverse for numerical stability.
//!
//! Internally the problem is brought to the computational standard form
//! `min c'x  s.t.  Ax = b, l <= x <= u` by adding one slack (or surplus)
//! column per inequality row; phase 1 introduces artificial columns only for
//! rows whose slack cannot serve as the initial basic variable.

use crate::problem::{Cmp, Problem, Sense};

/// Feasibility/optimality tolerance used by the simplex.
pub const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost (dual) tolerance used by the simplex.
pub const COST_TOL: f64 = 1e-9;
/// Pivot element magnitude below which a pivot is rejected.
const PIVOT_TOL: f64 = 1e-9;
/// Number of consecutive degenerate pivots before switching to Bland's rule.
const DEGENERACY_THRESHOLD: usize = 40;
/// Basis-inverse refactorization period, in pivots.
const REFACTOR_PERIOD: usize = 150;

/// Outcome status of a linear-programming solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was exceeded before convergence.
    IterationLimit,
}

/// Result of a linear-programming solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solve status; `values`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Primal values of the problem's structural variables.
    pub values: Vec<f64>,
    /// Objective value in the problem's original sense.
    pub objective: f64,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NonbasicAt {
    Lower,
    Upper,
}

/// Bounded-variable two-phase primal simplex solver.
///
/// The solver borrows the [`Problem`] and never mutates it; branching
/// algorithms override bounds through [`Simplex::solve_with_bounds`].
pub struct Simplex<'a> {
    problem: &'a Problem,
    /// Maximum number of pivots across both phases.
    pub max_iterations: usize,
}

/// Internal mutable tableau state.
struct State {
    /// Total columns: structural + slack + artificial.
    n_total: usize,
    /// First artificial column index (== n_struct + n_slack).
    art_start: usize,
    /// Row count.
    m: usize,
    /// Sparse columns of `A` (row, coeff).
    cols: Vec<Vec<(usize, f64)>>,
    /// Row right-hand sides.
    b: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Phase-2 costs (minimization form).
    cost: Vec<f64>,
    /// Basic variable per row.
    basis: Vec<usize>,
    /// Dense basis inverse, row-major `m x m`.
    binv: Vec<f64>,
    /// Basic variable values per row.
    xb: Vec<f64>,
    /// Nonbasic resting bound per column (ignored for basic columns).
    at: Vec<NonbasicAt>,
    /// Whether each column is currently basic.
    is_basic: Vec<bool>,
    iterations: usize,
    pivots_since_refactor: usize,
    degenerate_streak: usize,
}

impl State {
    fn bound_value(&self, j: usize) -> f64 {
        match self.at[j] {
            NonbasicAt::Lower => self.lower[j],
            NonbasicAt::Upper => self.upper[j],
        }
    }

    /// Computes `w = B^{-1} A_j` for a column `j`.
    fn ftran(&self, j: usize, w: &mut [f64]) {
        w.iter_mut().for_each(|x| *x = 0.0);
        for &(row, coeff) in &self.cols[j] {
            if coeff == 0.0 {
                continue;
            }
            for (i, wi) in w.iter_mut().enumerate().take(self.m) {
                *wi += self.binv[i * self.m + row] * coeff;
            }
        }
    }

    /// Computes duals `y = c_B' B^{-1}` with the given cost vector.
    fn duals(&self, cost: &[f64], y: &mut [f64]) {
        y.iter_mut().for_each(|x| *x = 0.0);
        for (k, &bk) in self.basis.iter().enumerate() {
            let cb = cost[bk];
            if cb == 0.0 {
                continue;
            }
            let row = &self.binv[k * self.m..(k + 1) * self.m];
            for i in 0..self.m {
                y[i] += cb * row[i];
            }
        }
    }

    fn reduced_cost(&self, cost: &[f64], y: &[f64], j: usize) -> f64 {
        let mut d = cost[j];
        for &(row, coeff) in &self.cols[j] {
            d -= y[row] * coeff;
        }
        d
    }

    /// Recomputes `binv` and `xb` from scratch (Gauss-Jordan on `B`).
    ///
    /// Returns `false` if the basis matrix is numerically singular.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        if m == 0 {
            return true;
        }
        // Build dense B column by column, augmented with the identity.
        let mut mat = vec![0.0; m * 2 * m];
        for (k, &j) in self.basis.iter().enumerate() {
            for &(row, coeff) in &self.cols[j] {
                mat[row * 2 * m + k] = coeff;
            }
        }
        for i in 0..m {
            mat[i * 2 * m + m + i] = 1.0;
        }
        // Gauss-Jordan with partial pivoting.
        for col in 0..m {
            let mut piv = col;
            let mut best = mat[col * 2 * m + col].abs();
            for r in col + 1..m {
                let v = mat[r * 2 * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < PIVOT_TOL {
                return false;
            }
            if piv != col {
                for c in 0..2 * m {
                    mat.swap(col * 2 * m + c, piv * 2 * m + c);
                }
            }
            let pval = mat[col * 2 * m + col];
            for c in 0..2 * m {
                mat[col * 2 * m + c] /= pval;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = mat[r * 2 * m + col];
                if f == 0.0 {
                    continue;
                }
                for c in 0..2 * m {
                    mat[r * 2 * m + c] -= f * mat[col * 2 * m + c];
                }
            }
        }
        for r in 0..m {
            for c in 0..m {
                self.binv[r * m + c] = mat[r * 2 * m + m + c];
            }
        }
        self.recompute_xb();
        self.pivots_since_refactor = 0;
        true
    }

    /// Recomputes basic values `xb = B^{-1} (b - N x_N)`.
    fn recompute_xb(&mut self) {
        let m = self.m;
        let mut rhs = self.b.clone();
        for j in 0..self.n_total {
            if self.is_basic[j] {
                continue;
            }
            let v = self.bound_value(j);
            if v == 0.0 {
                continue;
            }
            for &(row, coeff) in &self.cols[j] {
                rhs[row] -= coeff * v;
            }
        }
        for i in 0..m {
            let mut acc = 0.0;
            let row = &self.binv[i * m..(i + 1) * m];
            for k in 0..m {
                acc += row[k] * rhs[k];
            }
            self.xb[i] = acc;
        }
    }
}

/// Internal outcome of one simplex phase.
enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

impl<'a> Simplex<'a> {
    /// Creates a solver for the given problem.
    pub fn new(problem: &'a Problem) -> Self {
        let size_hint = problem.num_vars() + problem.num_constraints();
        Simplex {
            problem,
            max_iterations: 2_000 + 50 * size_hint,
        }
    }

    /// Solves the LP relaxation (integrality is ignored).
    pub fn solve(&self) -> LpSolution {
        self.solve_with_bounds(None)
    }

    /// Solves the LP relaxation with per-variable bound overrides.
    ///
    /// `overrides` maps structural variable index to `(lower, upper)`; this
    /// is the entry point used by branch and bound so the base problem can
    /// be shared immutably across the search tree.
    pub fn solve_with_bounds(&self, overrides: Option<&[(usize, f64, f64)]>) -> LpSolution {
        let p = self.problem;
        let n_struct = p.num_vars();
        let m = p.num_constraints();

        // Effective bounds after overrides.
        let mut lower: Vec<f64> = p.vars().iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = p.vars().iter().map(|v| v.upper).collect();
        if let Some(ovr) = overrides {
            for &(j, lo, up) in ovr {
                lower[j] = lo;
                upper[j] = up;
            }
        }
        for j in 0..n_struct {
            if lower[j] > upper[j] + FEAS_TOL {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    values: Vec::new(),
                    objective: 0.0,
                    iterations: 0,
                };
            }
        }

        // Minimization costs.
        let sign = match p.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cost: Vec<f64> = p.vars().iter().map(|v| sign * v.cost).collect();

        // Sparse columns for structural variables.
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_struct];
        let mut b = vec![0.0; m];
        for (i, c) in p.constraints().iter().enumerate() {
            b[i] = c.rhs;
            for &(v, coeff) in &c.terms {
                cols[v.0].push((i, coeff));
            }
        }

        // Slack / surplus columns.
        let mut slack_of_row = vec![usize::MAX; m];
        for (i, c) in p.constraints().iter().enumerate() {
            let coeff = match c.cmp {
                Cmp::Le => 1.0,
                Cmp::Ge => -1.0,
                Cmp::Eq => continue,
            };
            let j = cols.len();
            cols.push(vec![(i, coeff)]);
            lower.push(0.0);
            upper.push(f64::INFINITY);
            cost.push(0.0);
            slack_of_row[i] = j;
        }
        let art_start = cols.len();

        // Initial nonbasic assignment: every column rests at its lower
        // bound, except fixed-from-above overrides where upper < lower of
        // the original (already caught), and columns whose lower is -inf
        // cannot occur (validated by Problem).
        let mut at = vec![NonbasicAt::Lower; cols.len()];
        // Columns with an infinite *upper* can only rest at lower; columns
        // with finite bounds rest at the bound of smaller magnitude to keep
        // initial residuals small.
        for (j, a) in at.iter_mut().enumerate() {
            if upper[j].is_finite() && upper[j].abs() < lower[j].abs() {
                *a = NonbasicAt::Upper;
            }
        }

        // Residual r = b - A x_N with everything nonbasic.
        let mut resid = b.clone();
        for (j, col) in cols.iter().enumerate() {
            let v = match at[j] {
                NonbasicAt::Lower => lower[j],
                NonbasicAt::Upper => upper[j],
            };
            if v == 0.0 {
                continue;
            }
            for &(row, coeff) in col {
                resid[row] -= coeff * v;
            }
        }

        // Choose initial basis: slack where its sign allows feasibility,
        // artificial otherwise.
        let mut basis = Vec::with_capacity(m);
        let mut xb = Vec::with_capacity(m);
        let mut is_basic = vec![false; cols.len()];
        let mut needs_phase1 = false;
        for i in 0..m {
            let s = slack_of_row[i];
            let usable = s != usize::MAX
                && ((p.constraints()[i].cmp == Cmp::Le && resid[i] >= 0.0)
                    || (p.constraints()[i].cmp == Cmp::Ge && resid[i] <= 0.0));
            if usable {
                // Slack coefficient is +1 for Le (value = resid) and -1 for
                // Ge (value = -resid); both are >= 0 here.
                let val = match p.constraints()[i].cmp {
                    Cmp::Le => resid[i],
                    _ => -resid[i],
                };
                basis.push(s);
                xb.push(val);
                is_basic[s] = true;
            } else {
                let coeff = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
                let j = cols.len();
                cols.push(vec![(i, coeff)]);
                lower.push(0.0);
                upper.push(f64::INFINITY);
                cost.push(0.0);
                at.push(NonbasicAt::Lower);
                is_basic.push(true);
                basis.push(j);
                xb.push(resid[i].abs());
                needs_phase1 = true;
            }
        }
        let n_total = cols.len();

        let mut st = State {
            n_total,
            art_start,
            m,
            cols,
            b,
            lower,
            upper,
            cost,
            basis,
            binv: {
                let mut id = vec![0.0; m * m];
                for i in 0..m {
                    id[i * m + i] = 1.0;
                }
                id
            },
            xb,
            at,
            is_basic,
            iterations: 0,
            pivots_since_refactor: 0,
            degenerate_streak: 0,
        };
        // The identity binv is only valid if the initial basis matrix is a
        // signed identity; artificial columns with coefficient -1 and Ge
        // slacks invert rows. Refactorize to be exact.
        if !st.refactorize() {
            // An initial slack/artificial basis is never singular; treat
            // defensively as iteration-limit failure.
            return LpSolution {
                status: LpStatus::IterationLimit,
                values: Vec::new(),
                objective: 0.0,
                iterations: 0,
            };
        }

        // Phase 1 if any artificial exists with nonzero value.
        if needs_phase1 && st.n_total > st.art_start {
            let mut c1 = vec![0.0; st.n_total];
            for (idx, cv) in c1.iter_mut().enumerate().skip(st.art_start) {
                let _ = idx;
                *cv = 1.0;
            }
            match self.run_phase(&mut st, &c1) {
                PhaseOutcome::IterationLimit => {
                    return LpSolution {
                        status: LpStatus::IterationLimit,
                        values: Vec::new(),
                        objective: 0.0,
                        iterations: st.iterations,
                    }
                }
                PhaseOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by zero; reaching
                    // here indicates numerical trouble. Report infeasible.
                    return LpSolution {
                        status: LpStatus::Infeasible,
                        values: Vec::new(),
                        objective: 0.0,
                        iterations: st.iterations,
                    };
                }
                PhaseOutcome::Optimal => {}
            }
            let infeas: f64 = st
                .basis
                .iter()
                .enumerate()
                .filter(|&(_, &j)| j >= st.art_start)
                .map(|(i, _)| st.xb[i].abs())
                .sum();
            if infeas > 1e-6 {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    values: Vec::new(),
                    objective: 0.0,
                    iterations: st.iterations,
                };
            }
            self.expel_artificials(&mut st);
        }

        // Pin all artificial columns to zero so they can never re-enter.
        for j in st.art_start..st.n_total {
            st.lower[j] = 0.0;
            st.upper[j] = 0.0;
            if !st.is_basic[j] {
                st.at[j] = NonbasicAt::Lower;
            }
        }

        // Phase 2.
        let c2 = st.cost.clone();
        let outcome = self.run_phase(&mut st, &c2);
        let status = match outcome {
            PhaseOutcome::Optimal => LpStatus::Optimal,
            PhaseOutcome::Unbounded => LpStatus::Unbounded,
            PhaseOutcome::IterationLimit => LpStatus::IterationLimit,
        };
        if status != LpStatus::Optimal {
            return LpSolution {
                status,
                values: Vec::new(),
                objective: 0.0,
                iterations: st.iterations,
            };
        }

        // Extract structural values.
        let mut x = vec![0.0; n_struct];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = if st.is_basic[j] {
                let row = st.basis.iter().position(|&bj| bj == j).unwrap();
                st.xb[row]
            } else {
                st.bound_value(j)
            };
        }
        // Clamp tiny numerical drift into bounds.
        for (j, xj) in x.iter_mut().enumerate() {
            let lo = if j < n_struct { st.lower[j] } else { 0.0 };
            let hi = st.upper[j];
            if *xj < lo {
                *xj = lo;
            }
            if *xj > hi {
                *xj = hi;
            }
        }
        let objective = p.objective_value(&x);
        LpSolution {
            status: LpStatus::Optimal,
            values: x,
            objective,
            iterations: st.iterations,
        }
    }

    /// Pivots remaining basic artificials out of the basis where possible.
    fn expel_artificials(&self, st: &mut State) {
        for row in 0..st.m {
            if st.basis[row] < st.art_start {
                continue;
            }
            // Find any non-artificial nonbasic column with a usable pivot
            // element in this row.
            let mut w = vec![0.0; st.m];
            let mut replaced = false;
            for j in 0..st.art_start {
                if st.is_basic[j] || (st.lower[j] == st.upper[j]) {
                    continue;
                }
                st.ftran(j, &mut w);
                if w[row].abs() > 1e-6 {
                    self.pivot(st, j, row, st.bound_value(j), 0.0);
                    replaced = true;
                    break;
                }
            }
            if !replaced {
                // Redundant row: the artificial stays basic pinned at zero.
            }
        }
    }

    /// Runs the simplex loop with the given cost vector.
    fn run_phase(&self, st: &mut State, cost: &[f64]) -> PhaseOutcome {
        let m = st.m;
        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        loop {
            if st.iterations >= self.max_iterations {
                return PhaseOutcome::IterationLimit;
            }
            st.duals(cost, &mut y);

            // Entering variable selection.
            let use_bland = st.degenerate_streak > DEGENERACY_THRESHOLD;
            let mut entering: Option<(usize, f64, f64)> = None; // (col, dir, score)
            for j in 0..st.n_total {
                if st.is_basic[j] || st.lower[j] == st.upper[j] {
                    continue;
                }
                let d = st.reduced_cost(cost, &y, j);
                let (eligible, dir) = match st.at[j] {
                    NonbasicAt::Lower => (d < -COST_TOL, 1.0),
                    NonbasicAt::Upper => (d > COST_TOL, -1.0),
                };
                if !eligible {
                    continue;
                }
                if use_bland {
                    entering = Some((j, dir, d.abs()));
                    break;
                }
                let score = d.abs();
                if entering.is_none_or(|(_, _, s)| score > s) {
                    entering = Some((j, dir, score));
                }
            }
            let Some((j_in, dir, _)) = entering else {
                return PhaseOutcome::Optimal;
            };

            st.ftran(j_in, &mut w);

            // Ratio test: the entering variable moves by t >= 0 in
            // direction `dir` from its current bound.
            let span = st.upper[j_in] - st.lower[j_in];
            let mut t_best = span; // own bound flip (may be +inf)
            let mut leave: Option<(usize, NonbasicAt)> = None; // (row, bound hit)
            for (i, &wi) in w.iter().enumerate().take(m) {
                let delta = dir * wi;
                if delta > PIVOT_TOL {
                    // Basic variable decreases toward its lower bound.
                    let bi = st.basis[i];
                    let slack = st.xb[i] - st.lower[bi];
                    let t = slack / delta;
                    if t < t_best - 1e-12
                        || (use_bland
                            && (t - t_best).abs() <= 1e-12
                            && leave.is_some_and(|(r, _)| st.basis[i] < st.basis[r]))
                    {
                        t_best = t.max(0.0);
                        leave = Some((i, NonbasicAt::Lower));
                    }
                } else if delta < -PIVOT_TOL {
                    // Basic variable increases toward its upper bound.
                    let bi = st.basis[i];
                    if !st.upper[bi].is_finite() {
                        continue;
                    }
                    let slack = st.upper[bi] - st.xb[i];
                    let t = slack / (-delta);
                    if t < t_best - 1e-12
                        || (use_bland
                            && (t - t_best).abs() <= 1e-12
                            && leave.is_some_and(|(r, _)| st.basis[i] < st.basis[r]))
                    {
                        t_best = t.max(0.0);
                        leave = Some((i, NonbasicAt::Upper));
                    }
                }
            }

            if !t_best.is_finite() {
                return PhaseOutcome::Unbounded;
            }
            st.degenerate_streak = if t_best <= FEAS_TOL {
                st.degenerate_streak + 1
            } else {
                0
            };

            let start = st.bound_value(j_in);
            match leave {
                None => {
                    // Bound flip: the entering variable travels its full
                    // span and rests at the opposite bound.
                    for (xb, &wi) in st.xb.iter_mut().zip(w.iter()).take(m) {
                        *xb -= dir * t_best * wi;
                    }
                    st.at[j_in] = match st.at[j_in] {
                        NonbasicAt::Lower => NonbasicAt::Upper,
                        NonbasicAt::Upper => NonbasicAt::Lower,
                    };
                    st.iterations += 1;
                }
                Some((row, hit)) => {
                    let new_val = start + dir * t_best;
                    self.pivot_update(st, j_in, row, hit, new_val, dir, t_best, &w);
                }
            }

            if st.pivots_since_refactor >= REFACTOR_PERIOD && !st.refactorize() {
                return PhaseOutcome::IterationLimit;
            }
        }
    }

    /// Performs a full basis change where column `j_in` replaces the basic
    /// variable of `row`, which leaves at bound `hit`.
    #[allow(clippy::too_many_arguments)]
    fn pivot_update(
        &self,
        st: &mut State,
        j_in: usize,
        row: usize,
        hit: NonbasicAt,
        new_val: f64,
        dir: f64,
        t: f64,
        w: &[f64],
    ) {
        let m = st.m;
        let j_out = st.basis[row];
        // Update basic values.
        for (i, (xb, &wi)) in st.xb.iter_mut().zip(w.iter()).enumerate().take(m) {
            if i != row {
                *xb -= dir * t * wi;
            }
        }
        st.xb[row] = new_val;
        // Update binv: divide pivot row, eliminate elsewhere.
        let piv = w[row];
        for c in 0..m {
            st.binv[row * m + c] /= piv;
        }
        for (i, &f) in w.iter().enumerate().take(m) {
            if i == row || f == 0.0 {
                continue;
            }
            for c in 0..m {
                st.binv[i * m + c] -= f * st.binv[row * m + c];
            }
        }
        st.basis[row] = j_in;
        st.is_basic[j_in] = true;
        st.is_basic[j_out] = false;
        st.at[j_out] = hit;
        st.iterations += 1;
        st.pivots_since_refactor += 1;
    }

    /// Forces column `j_in` into the basis at `value`, replacing `row`'s
    /// current basic variable, which becomes nonbasic at the bound nearest
    /// its final value (used when expelling artificials at zero).
    fn pivot(&self, st: &mut State, j_in: usize, row: usize, _value: f64, _t: f64) {
        let mut w = vec![0.0; st.m];
        st.ftran(j_in, &mut w);
        let old_val = st.xb[row];
        self.pivot_update(st, j_in, row, NonbasicAt::Lower, old_val, 0.0, 0.0, &w);
        // A degenerate swap keeps all xb values; recompute for safety.
        st.recompute_xb();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, VarKind};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "expected {b}, got {a}");
    }

    #[test]
    fn trivial_unconstrained_min() {
        // min x over [2, 10] -> 2.
        let mut p = Problem::minimize();
        p.add_var(VarKind::Continuous, 2.0, 10.0, 1.0, "x");
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn trivial_unconstrained_max_at_upper() {
        let mut p = Problem::maximize();
        p.add_var(VarKind::Continuous, 0.0, 7.5, 3.0, "x");
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 22.5);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize();
        p.add_var(VarKind::Continuous, 0.0, f64::INFINITY, 1.0, "x");
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn classic_two_var_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6).
        let mut p = Problem::maximize();
        let x = p.add_nonneg(3.0, "x");
        let y = p.add_nonneg(5.0, "y");
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.values[x.index()], 2.0);
        assert_close(s.values[y.index()], 6.0);
    }

    #[test]
    fn ge_and_eq_rows_need_phase_one() {
        // min 2x + 3y s.t. x + y = 10, x >= 3, y >= 2 -> x=8, y=2, obj=22.
        let mut p = Problem::minimize();
        let x = p.add_nonneg(2.0, "x");
        let y = p.add_nonneg(3.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
        p.add_constraint(vec![(y, 1.0)], Cmp::Ge, 2.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 22.0);
        assert_close(s.values[x.index()], 8.0);
        assert_close(s.values[y.index()], 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Continuous, 0.0, 1.0, 1.0, "x");
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 5.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn conflicting_rows_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg(1.0, "x");
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 5.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn bound_overrides_apply() {
        // max x + y, x + y <= 10, with y fixed to [0,0] -> x = 10.
        let mut p = Problem::maximize();
        let x = p.add_nonneg(1.0, "x");
        let y = p.add_nonneg(1.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        let s = Simplex::new(&p).solve_with_bounds(Some(&[(y.index(), 0.0, 0.0)]));
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.values[x.index()], 10.0);
        assert_close(s.values[y.index()], 0.0);
    }

    #[test]
    fn contradictory_override_is_infeasible() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg(1.0, "x");
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 10.0);
        let s = Simplex::new(&p).solve_with_bounds(Some(&[(x.index(), 2.0, 1.0)]));
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -4  (i.e. x >= 4).
        let mut p = Problem::minimize();
        let x = p.add_nonneg(1.0, "x");
        p.add_constraint(vec![(x, -1.0)], Cmp::Le, -4.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate configuration; ensures Bland fallback works.
        let mut p = Problem::maximize();
        let x = p.add_nonneg(0.75, "x1");
        let y = p.add_nonneg(-150.0, "x2");
        let z = p.add_nonneg(0.02, "x3");
        let w = p.add_nonneg(-6.0, "x4");
        p.add_constraint(
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(vec![(z, 1.0)], Cmp::Le, 1.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn equality_with_upper_bounds() {
        // min -x - y s.t. x + y = 1, x,y in [0, 0.6] -> obj -1.
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Continuous, 0.0, 0.6, -1.0, "x");
        let y = p.add_var(VarKind::Continuous, 0.0, 0.6, -1.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 4 stated twice; optimum is unaffected.
        let mut p = Problem::maximize();
        let x = p.add_nonneg(1.0, "x");
        let y = p.add_nonneg(2.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 8.0);
        assert_close(s.values[y.index()], 4.0);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut p = Problem::maximize();
        let x = p.add_var(VarKind::Continuous, 2.5, 2.5, 10.0, "x");
        let y = p.add_nonneg(1.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.values[x.index()], 2.5);
        assert_close(s.values[y.index()], 1.5);
    }

    #[test]
    fn larger_random_like_lp_is_feasible_and_optimal() {
        // Transportation-style LP: 3 sources x 4 sinks.
        let supply = [20.0, 30.0, 25.0];
        let demand = [10.0, 25.0, 15.0, 25.0];
        let cost = [
            [2.0, 3.0, 1.0, 4.0],
            [5.0, 1.0, 3.0, 2.0],
            [2.0, 2.0, 4.0, 1.0],
        ];
        let mut p = Problem::minimize();
        let mut ids = [[None; 4]; 3];
        for i in 0..3 {
            for j in 0..4 {
                ids[i][j] = Some(p.add_nonneg(cost[i][j], format!("x{i}{j}")));
            }
        }
        for i in 0..3 {
            let terms: Vec<_> = (0..4).map(|j| (ids[i][j].unwrap(), 1.0)).collect();
            p.add_constraint(terms, Cmp::Le, supply[i]);
        }
        for j in 0..4 {
            let terms: Vec<_> = (0..3).map(|i| (ids[i][j].unwrap(), 1.0)).collect();
            p.add_constraint(terms, Cmp::Ge, demand[j]);
        }
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        // Verify feasibility and the known optimum (hand-checked: 90, e.g.
        // s0->d2:15@1, s0->d0:5@2, s2->d0:5@2, s2->d3:20@1, s1->d3:5@2,
        // s1->d1:25@1).
        assert!(p.is_feasible(&s.values, 1e-6));
        assert_close(s.objective, 90.0);
    }
}
