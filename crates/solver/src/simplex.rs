//! Two-phase primal simplex for linear programs with bounded variables,
//! built on a sparse product-form (eta-file) representation of the basis
//! inverse.
//!
//! The implementation is a *revised* simplex: the basis inverse is never
//! formed explicitly. Instead the solver factorizes the basis once into a
//! sequence of sparse eta matrices (one per pivot column) and represents
//! every later pivot as one additional eta factor. FTRAN (`B^-1 a`) applies
//! the eta file forward; BTRAN (`y' B^-1`) applies the transposed factors in
//! reverse. The file is rebuilt from scratch ("refactorized") only when an
//! update-count, fill, or stability trigger fires — not on every solve.
//!
//! Variables may be nonbasic at either their lower or upper bound (so
//! branch-and-bound bound fixing and binary variables do not require extra
//! rows), bound flips are supported, and Bland's rule guards against
//! cycling under degeneracy.
//!
//! Warm starts: an optimal solve returns an opaque [`Basis`] snapshot.
//! Passing it back via [`Simplex::solve_warm`] — typically after a bound
//! change, as branch and bound does — reinstalls the basis, refactorizes,
//! and repairs primal feasibility with a bounded-variable *dual* simplex
//! instead of running two cold phases. Any numerical trouble on the warm
//! path falls back to the cold start, so correctness never depends on it.
//!
//! Internally the problem is brought to the computational standard form
//! `min c'x  s.t.  Ax = b, l <= x <= u` by adding one slack (or surplus)
//! column per inequality row; phase 1 introduces artificial columns only for
//! rows whose slack cannot serve as the initial basic variable.

use crate::problem::{Cmp, Problem, Sense};

/// Feasibility/optimality tolerance used by the simplex.
pub const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost (dual) tolerance used by the simplex.
pub const COST_TOL: f64 = 1e-9;
/// Pivot element magnitude below which a pivot is rejected.
const PIVOT_TOL: f64 = 1e-9;
/// Pivot magnitude below which the eta update is considered unstable and
/// the basis is refactorized right after the pivot is applied.
const STABLE_PIVOT_TOL: f64 = 1e-6;
/// Number of consecutive degenerate pivots before switching to Bland's rule.
const DEGENERACY_THRESHOLD: usize = 40;
/// Eta updates since the last factorization that force a refactorization.
const REFACTOR_ETA_LIMIT: usize = 100;
/// Extra eta-file fill per row (beyond the fresh factorization) that forces
/// a refactorization.
const REFACTOR_FILL_FACTOR: usize = 16;

/// Outcome status of a linear-programming solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was exceeded before convergence.
    IterationLimit,
}

/// Result of a linear-programming solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solve status; `values`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Primal values of the problem's structural variables.
    pub values: Vec<f64>,
    /// Objective value in the problem's original sense.
    pub objective: f64,
    /// Number of simplex pivots performed (all phases, primal and dual).
    pub iterations: usize,
    /// Row duals `y` of the optimal basis, in *minimization form*: for a
    /// maximization problem these price `min (-c)'x`. Empty unless the
    /// status is [`LpStatus::Optimal`]. Together with the reduced costs
    /// `d_j = c_j - y'A_j` they certify optimality (see
    /// `crates/solver/tests/certificates.rs`).
    pub duals: Vec<f64>,
    /// Number of basis (re)factorizations performed, including the initial
    /// one.
    pub refactorizations: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NonbasicAt {
    Lower,
    Upper,
}

/// An opaque snapshot of an optimal simplex basis, reusable to warm-start
/// a later solve of the *same* problem skeleton (same variables, same
/// rows) under different bounds — the branch-and-bound child-node case —
/// or a structurally identical problem from a previous scheduling round.
///
/// Obtained from [`Simplex::solve_warm`]; contains no numeric factor data
/// (the eta file is rebuilt on installation), so it is cheap to clone and
/// share across search-tree nodes.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Basic column per row over the structural+slack universe;
    /// `usize::MAX` marks a row whose basic variable was an artificial
    /// pinned at zero (a redundant row).
    basic: Vec<usize>,
    /// Resting bound of every structural+slack column (meaningful for the
    /// nonbasic ones).
    at: Vec<NonbasicAt>,
    /// Row count of the snapshotted problem.
    m: usize,
    /// Structural + slack column count of the snapshotted problem.
    n_cols: usize,
}

/// One factor of the product-form inverse: an identity matrix whose
/// `row`-th column is replaced by the eta vector derived from the pivot
/// column `w` (`1/w_row` on the diagonal, `-w_i/w_row` elsewhere).
#[derive(Debug, Clone)]
struct Eta {
    row: usize,
    pivot_recip: f64,
    /// Off-pivot multipliers `(i, -w_i / w_row)`.
    others: Vec<(usize, f64)>,
}

/// Bounded-variable two-phase primal simplex solver.
///
/// The solver borrows the [`Problem`] and never mutates it; branching
/// algorithms override bounds through [`Simplex::solve_with_bounds`] or
/// [`Simplex::solve_warm`].
pub struct Simplex<'a> {
    problem: &'a Problem,
    /// Maximum number of pivots across all phases.
    pub max_iterations: usize,
}

/// Internal mutable solver state.
struct State {
    /// Total columns: structural + slack + artificial.
    n_total: usize,
    /// First artificial column index (== n_struct + n_slack).
    art_start: usize,
    /// Row count.
    m: usize,
    /// Sparse columns of `A` (row, coeff).
    cols: Vec<Vec<(usize, f64)>>,
    /// Row right-hand sides.
    b: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Phase-2 costs (minimization form).
    cost: Vec<f64>,
    /// Basic variable per row.
    basis: Vec<usize>,
    /// Eta file: `B^-1 = E_k ... E_1` with `etas[0] = E_1`.
    etas: Vec<Eta>,
    /// Total nonzeros stored across the eta file.
    eta_nnz: usize,
    /// Eta-file fill right after the last fresh factorization.
    base_fill: usize,
    /// Set when an eta with a dangerously small pivot was appended.
    unstable: bool,
    /// Basic variable values per row.
    xb: Vec<f64>,
    /// Nonbasic resting bound per column (ignored for basic columns).
    at: Vec<NonbasicAt>,
    /// Whether each column is currently basic.
    is_basic: Vec<bool>,
    iterations: usize,
    pivots_since_refactor: usize,
    degenerate_streak: usize,
    refactorizations: usize,
}

impl State {
    fn bound_value(&self, j: usize) -> f64 {
        match self.at[j] {
            NonbasicAt::Lower => self.lower[j],
            NonbasicAt::Upper => self.upper[j],
        }
    }

    /// Applies the eta file forward: `v <- B^-1 v`.
    fn apply_etas(&self, v: &mut [f64]) {
        for eta in &self.etas {
            let t = v[eta.row];
            if t == 0.0 {
                continue;
            }
            v[eta.row] = eta.pivot_recip * t;
            for &(i, c) in &eta.others {
                v[i] += c * t;
            }
        }
    }

    /// Applies the transposed eta file in reverse: `u <- (u' B^-1)'`.
    fn btran(&self, u: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut acc = eta.pivot_recip * u[eta.row];
            for &(i, c) in &eta.others {
                acc += c * u[i];
            }
            u[eta.row] = acc;
        }
    }

    /// Computes `w = B^{-1} A_j` for a column `j`.
    fn ftran(&self, j: usize, w: &mut [f64]) {
        w.iter_mut().for_each(|x| *x = 0.0);
        for &(row, coeff) in &self.cols[j] {
            w[row] += coeff;
        }
        self.apply_etas(w);
    }

    /// Computes duals `y = c_B' B^{-1}` with the given cost vector.
    fn duals(&self, cost: &[f64], y: &mut [f64]) {
        for (k, &bk) in self.basis.iter().enumerate() {
            y[k] = cost[bk];
        }
        self.btran(y);
    }

    fn reduced_cost(&self, cost: &[f64], y: &[f64], j: usize) -> f64 {
        let mut d = cost[j];
        for &(row, coeff) in &self.cols[j] {
            d -= y[row] * coeff;
        }
        d
    }

    /// Appends the eta factor for a pivot on `row` with pivot column `w`
    /// (which must satisfy `|w[row]| >= PIVOT_TOL`).
    fn push_eta(&mut self, row: usize, w: &[f64]) {
        let piv = w[row];
        if piv.abs() < STABLE_PIVOT_TOL {
            self.unstable = true;
        }
        let pivot_recip = 1.0 / piv;
        let mut others = Vec::new();
        for (i, &wi) in w.iter().enumerate() {
            if i == row || wi.abs() <= 1e-14 {
                continue;
            }
            others.push((i, -wi * pivot_recip));
        }
        self.eta_nnz += others.len() + 1;
        self.etas.push(Eta {
            row,
            pivot_recip,
            others,
        });
    }

    /// Whether the eta file should be rebuilt before the next pivot.
    fn needs_refactor(&self) -> bool {
        self.pivots_since_refactor > 0
            && (self.unstable
                || self.pivots_since_refactor >= REFACTOR_ETA_LIMIT
                || self.eta_nnz > self.base_fill + REFACTOR_FILL_FACTOR * self.m + 64)
    }

    /// Rebuilds the eta file from scratch by factorizing the current basis
    /// columns (sparsest first, partial pivoting by magnitude).
    ///
    /// Returns `false` if the basis matrix is numerically singular.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        self.etas.clear();
        self.eta_nnz = 0;
        self.unstable = false;
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
        if m == 0 {
            self.base_fill = 0;
            return true;
        }
        // Factor sparser columns first: their etas stay short and the
        // denser columns absorb the fill.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&k| self.cols[self.basis[k]].len());
        let mut assigned = vec![false; m];
        let mut row_of = vec![usize::MAX; m];
        let mut w = vec![0.0; m];
        for &k in &order {
            let j = self.basis[k];
            self.ftran(j, &mut w);
            let mut best_r = usize::MAX;
            let mut best = PIVOT_TOL;
            for (r, done) in assigned.iter().enumerate() {
                if !done && w[r].abs() > best {
                    best = w[r].abs();
                    best_r = r;
                }
            }
            if best_r == usize::MAX {
                return false;
            }
            self.push_eta(best_r, &w);
            assigned[best_r] = true;
            row_of[k] = best_r;
        }
        // Partial pivoting may factor a basis column onto a different row;
        // realign `basis` so the column factored onto row r is recorded as
        // basic for row r (the basis *set* is unchanged).
        let old = self.basis.clone();
        for (k, &r) in row_of.iter().enumerate() {
            self.basis[r] = old[k];
        }
        self.unstable = false;
        self.base_fill = self.eta_nnz;
        self.recompute_xb();
        true
    }

    /// Recomputes basic values `xb = B^{-1} (b - N x_N)`.
    fn recompute_xb(&mut self) {
        let mut rhs = self.b.clone();
        for j in 0..self.n_total {
            if self.is_basic[j] {
                continue;
            }
            let v = self.bound_value(j);
            if v == 0.0 {
                continue;
            }
            for &(row, coeff) in &self.cols[j] {
                rhs[row] -= coeff * v;
            }
        }
        self.apply_etas(&mut rhs);
        self.xb.copy_from_slice(&rhs);
    }

    /// Largest bound violation among the basic variables.
    fn max_primal_infeasibility(&self) -> f64 {
        let mut worst = 0.0f64;
        for (i, &bi) in self.basis.iter().enumerate() {
            worst = worst
                .max(self.lower[bi] - self.xb[i])
                .max(self.xb[i] - self.upper[bi]);
        }
        worst
    }

    /// Installs a warm-start basis: statuses, basic set, and a fresh
    /// factorization. Returns `false` (leaving cleanup to
    /// [`State::cold_start`]) if the snapshot does not fit this problem or
    /// the reinstalled basis is singular.
    fn install_warm(&mut self, wb: &Basis) -> bool {
        if wb.m != self.m
            || wb.n_cols != self.art_start
            || wb.at.len() != self.art_start
            || wb.basic.len() != self.m
        {
            return false;
        }
        let mut seen = vec![false; self.art_start];
        for &j in &wb.basic {
            if j == usize::MAX {
                continue;
            }
            if j >= self.art_start || seen[j] {
                return false;
            }
            seen[j] = true;
        }
        for j in 0..self.art_start {
            let mut a = wb.at[j];
            // A column cannot rest at an infinite bound; repair rather
            // than reject (bounds may have changed since the snapshot).
            if a == NonbasicAt::Upper && !self.upper[j].is_finite() {
                a = NonbasicAt::Lower;
            }
            self.at[j] = a;
            self.is_basic[j] = false;
        }
        self.basis.clear();
        self.xb.clear();
        self.xb.resize(self.m, 0.0);
        for (row, &j) in wb.basic.iter().enumerate() {
            let jj = if j == usize::MAX {
                // Recreate the pinned artificial for this redundant row.
                let k = self.cols.len();
                self.cols.push(vec![(row, 1.0)]);
                self.lower.push(0.0);
                self.upper.push(0.0);
                self.cost.push(0.0);
                self.at.push(NonbasicAt::Lower);
                self.is_basic.push(true);
                k
            } else {
                j
            };
            self.is_basic[jj] = true;
            self.basis.push(jj);
        }
        self.n_total = self.cols.len();
        self.refactorize()
    }

    /// Resets to the cold initial basis (slack where feasible, artificial
    /// otherwise), discarding any leftovers from a failed warm install.
    /// Returns whether phase 1 is needed.
    fn cold_start(&mut self, cmps: &[Cmp], slack_of_row: &[usize]) -> bool {
        let m = self.m;
        self.cols.truncate(self.art_start);
        self.lower.truncate(self.art_start);
        self.upper.truncate(self.art_start);
        self.cost.truncate(self.art_start);
        self.at.truncate(self.art_start);
        self.is_basic.clear();
        self.is_basic.resize(self.art_start, false);
        self.basis.clear();
        self.xb.clear();
        self.etas.clear();
        self.eta_nnz = 0;
        self.base_fill = 0;
        self.unstable = false;
        // Default resting assignment: lower bound, unless the finite upper
        // bound has smaller magnitude (keeps initial residuals small).
        for j in 0..self.art_start {
            self.at[j] = if self.upper[j].is_finite() && self.upper[j].abs() < self.lower[j].abs() {
                NonbasicAt::Upper
            } else {
                NonbasicAt::Lower
            };
        }
        // Residual r = b - A x_N with everything nonbasic.
        let mut resid = self.b.clone();
        for j in 0..self.art_start {
            let v = self.bound_value(j);
            if v == 0.0 {
                continue;
            }
            for &(row, coeff) in &self.cols[j] {
                resid[row] -= coeff * v;
            }
        }
        let mut needs_phase1 = false;
        for i in 0..m {
            let s = slack_of_row[i];
            let usable = s != usize::MAX
                && ((cmps[i] == Cmp::Le && resid[i] >= 0.0)
                    || (cmps[i] == Cmp::Ge && resid[i] <= 0.0));
            if usable {
                // Slack coefficient is +1 for Le (value = resid) and -1 for
                // Ge (value = -resid); both are >= 0 here.
                let val = match cmps[i] {
                    Cmp::Le => resid[i],
                    _ => -resid[i],
                };
                self.basis.push(s);
                self.xb.push(val);
                self.is_basic[s] = true;
            } else {
                let coeff = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
                let j = self.cols.len();
                self.cols.push(vec![(i, coeff)]);
                self.lower.push(0.0);
                self.upper.push(f64::INFINITY);
                self.cost.push(0.0);
                self.at.push(NonbasicAt::Lower);
                self.is_basic.push(true);
                self.basis.push(j);
                self.xb.push(resid[i].abs());
                needs_phase1 = true;
            }
        }
        self.n_total = self.cols.len();
        needs_phase1
    }

    /// Snapshots the current basis for later warm starts.
    fn snapshot(&self) -> Basis {
        Basis {
            basic: self
                .basis
                .iter()
                .map(|&j| if j < self.art_start { j } else { usize::MAX })
                .collect(),
            at: self.at[..self.art_start].to_vec(),
            m: self.m,
            n_cols: self.art_start,
        }
    }
}

/// Internal outcome of one primal simplex phase.
enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Internal outcome of the dual-simplex repair pass.
enum DualOutcome {
    /// Primal feasibility restored (dual feasibility preserved).
    Feasible,
    /// A row proved the bounds system infeasible.
    Infeasible,
    /// Numerical trouble or iteration budget: fall back to a cold solve.
    GiveUp,
}

impl<'a> Simplex<'a> {
    /// Creates a solver for the given problem.
    pub fn new(problem: &'a Problem) -> Self {
        let size_hint = problem.num_vars() + problem.num_constraints();
        Simplex {
            problem,
            max_iterations: 2_000 + 50 * size_hint,
        }
    }

    /// Solves the LP relaxation (integrality is ignored).
    pub fn solve(&self) -> LpSolution {
        self.solve_with_bounds(None)
    }

    /// Solves the LP relaxation with per-variable bound overrides.
    ///
    /// `overrides` maps structural variable index to `(lower, upper)`; this
    /// is the entry point used by branch and bound so the base problem can
    /// be shared immutably across the search tree.
    pub fn solve_with_bounds(&self, overrides: Option<&[(usize, f64, f64)]>) -> LpSolution {
        self.solve_warm(overrides, None).0
    }

    /// Solves the LP relaxation, optionally warm-starting from a [`Basis`]
    /// snapshot of a previous solve of the same problem skeleton.
    ///
    /// On [`LpStatus::Optimal`] the returned snapshot can seed the next
    /// solve; on any other status it is `None`. A snapshot that does not
    /// fit the problem, or whose basis turns out singular or beyond repair
    /// under the new bounds, is silently discarded in favour of the cold
    /// two-phase start — the warm path is a pure accelerator.
    pub fn solve_warm(
        &self,
        overrides: Option<&[(usize, f64, f64)]>,
        warm: Option<&Basis>,
    ) -> (LpSolution, Option<Basis>) {
        let p = self.problem;
        let n_struct = p.num_vars();
        let m = p.num_constraints();

        // Effective bounds after overrides.
        let mut lower: Vec<f64> = p.vars().iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = p.vars().iter().map(|v| v.upper).collect();
        if let Some(ovr) = overrides {
            for &(j, lo, up) in ovr {
                lower[j] = lo;
                upper[j] = up;
            }
        }
        for j in 0..n_struct {
            if lower[j] > upper[j] + FEAS_TOL {
                return (
                    LpSolution {
                        status: LpStatus::Infeasible,
                        values: Vec::new(),
                        objective: 0.0,
                        iterations: 0,
                        duals: Vec::new(),
                        refactorizations: 0,
                    },
                    None,
                );
            }
        }

        // Minimization costs.
        let sign = match p.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cost: Vec<f64> = p.vars().iter().map(|v| sign * v.cost).collect();

        // Sparse columns for structural variables.
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_struct];
        let mut b = vec![0.0; m];
        for (i, c) in p.constraints().iter().enumerate() {
            b[i] = c.rhs;
            for &(v, coeff) in &c.terms {
                cols[v.0].push((i, coeff));
            }
        }

        // Slack / surplus columns.
        let mut slack_of_row = vec![usize::MAX; m];
        let cmps: Vec<Cmp> = p.constraints().iter().map(|c| c.cmp).collect();
        for (i, &cmp) in cmps.iter().enumerate() {
            let coeff = match cmp {
                Cmp::Le => 1.0,
                Cmp::Ge => -1.0,
                Cmp::Eq => continue,
            };
            let j = cols.len();
            cols.push(vec![(i, coeff)]);
            lower.push(0.0);
            upper.push(f64::INFINITY);
            cost.push(0.0);
            slack_of_row[i] = j;
        }
        let art_start = cols.len();

        let mut st = State {
            n_total: art_start,
            art_start,
            m,
            at: vec![NonbasicAt::Lower; art_start],
            is_basic: vec![false; art_start],
            cols,
            b,
            lower,
            upper,
            cost,
            basis: Vec::new(),
            etas: Vec::new(),
            eta_nnz: 0,
            base_fill: 0,
            unstable: false,
            xb: vec![0.0; m],
            iterations: 0,
            pivots_since_refactor: 0,
            degenerate_streak: 0,
            refactorizations: 0,
        };

        // Warm path: reinstall the snapshot and repair primal feasibility
        // with the dual simplex (bound changes leave the basis dual
        // feasible, so this is usually a handful of pivots).
        let mut warm_ok = match warm {
            Some(wb) => st.install_warm(wb),
            None => false,
        };
        if warm_ok && st.max_primal_infeasibility() > FEAS_TOL {
            let c2 = st.cost.clone();
            match self.dual_simplex(&mut st, &c2) {
                DualOutcome::Feasible => {}
                DualOutcome::Infeasible => return (self.failed(LpStatus::Infeasible, &st), None),
                DualOutcome::GiveUp => warm_ok = false,
            }
        }

        if !warm_ok {
            let needs_phase1 = st.cold_start(&cmps, &slack_of_row);
            if !st.refactorize() {
                // An initial slack/artificial basis is never singular;
                // treat defensively as iteration-limit failure.
                return (self.failed(LpStatus::IterationLimit, &st), None);
            }
            if needs_phase1 {
                let c1: Vec<f64> = (0..st.n_total)
                    .map(|j| if j >= st.art_start { 1.0 } else { 0.0 })
                    .collect();
                match self.run_phase(&mut st, &c1) {
                    PhaseOutcome::IterationLimit => {
                        return (self.failed(LpStatus::IterationLimit, &st), None)
                    }
                    PhaseOutcome::Unbounded => {
                        // Phase-1 objective is bounded below by zero;
                        // reaching here indicates numerical trouble.
                        return (self.failed(LpStatus::Infeasible, &st), None);
                    }
                    PhaseOutcome::Optimal => {}
                }
                let infeas: f64 = st
                    .basis
                    .iter()
                    .enumerate()
                    .filter(|&(_, &j)| j >= st.art_start)
                    .map(|(i, _)| st.xb[i].abs())
                    .sum();
                if infeas > 1e-6 {
                    return (self.failed(LpStatus::Infeasible, &st), None);
                }
                self.expel_artificials(&mut st);
            }
        }

        // Pin all artificial columns to zero so they can never re-enter.
        for j in st.art_start..st.n_total {
            st.lower[j] = 0.0;
            st.upper[j] = 0.0;
            if !st.is_basic[j] {
                st.at[j] = NonbasicAt::Lower;
            }
        }

        // Phase 2.
        let c2 = st.cost.clone();
        let outcome = self.run_phase(&mut st, &c2);
        let status = match outcome {
            PhaseOutcome::Optimal => LpStatus::Optimal,
            PhaseOutcome::Unbounded => LpStatus::Unbounded,
            PhaseOutcome::IterationLimit => LpStatus::IterationLimit,
        };
        if status != LpStatus::Optimal {
            return (self.failed(status, &st), None);
        }

        // Extract structural values.
        let mut x = vec![0.0; n_struct];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = if st.is_basic[j] {
                let row = st.basis.iter().position(|&bj| bj == j).unwrap();
                st.xb[row]
            } else {
                st.bound_value(j)
            };
        }
        // Clamp tiny numerical drift into bounds.
        for (j, xj) in x.iter_mut().enumerate() {
            let lo = st.lower[j];
            let hi = st.upper[j];
            if *xj < lo {
                *xj = lo;
            }
            if *xj > hi {
                *xj = hi;
            }
        }
        let objective = p.objective_value(&x);
        let mut y = vec![0.0; m];
        st.duals(&c2, &mut y);
        let snapshot = st.snapshot();
        (
            LpSolution {
                status: LpStatus::Optimal,
                values: x,
                objective,
                iterations: st.iterations,
                duals: y,
                refactorizations: st.refactorizations,
            },
            Some(snapshot),
        )
    }

    fn failed(&self, status: LpStatus, st: &State) -> LpSolution {
        LpSolution {
            status,
            values: Vec::new(),
            objective: 0.0,
            iterations: st.iterations,
            duals: Vec::new(),
            refactorizations: st.refactorizations,
        }
    }

    /// Bounded-variable dual simplex: restores primal feasibility while
    /// preserving (approximate) dual feasibility of the installed basis.
    ///
    /// Used only on the warm path after bound changes. A row whose
    /// violation cannot be reduced by any admissible nonbasic column is a
    /// Farkas certificate: the bounds system is infeasible.
    fn dual_simplex(&self, st: &mut State, cost: &[f64]) -> DualOutcome {
        let m = st.m;
        if m == 0 {
            return DualOutcome::Feasible;
        }
        let mut y = vec![0.0; m];
        let mut rho = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut stalls = 0usize;
        loop {
            if st.iterations >= self.max_iterations {
                return DualOutcome::GiveUp;
            }
            // Leaving variable: the most violated basic variable.
            let mut row = usize::MAX;
            let mut worst = FEAS_TOL;
            let mut leave_at_upper = false;
            for (i, &bi) in st.basis.iter().enumerate() {
                let below = st.lower[bi] - st.xb[i];
                let above = st.xb[i] - st.upper[bi];
                if below > worst {
                    worst = below;
                    row = i;
                    leave_at_upper = false;
                }
                if above > worst {
                    worst = above;
                    row = i;
                    leave_at_upper = true;
                }
            }
            if row == usize::MAX {
                return DualOutcome::Feasible;
            }
            // rho = e_row' B^-1, the tableau row of the leaving variable.
            rho.iter_mut().for_each(|x| *x = 0.0);
            rho[row] = 1.0;
            st.btran(&mut rho);
            st.duals(cost, &mut y);
            // Entering variable: dual ratio test over admissible columns
            // (those whose movement off their bound reduces the violation);
            // the smallest |d/alpha| keeps the reduced costs sign-feasible.
            let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
            for j in 0..st.n_total {
                if st.is_basic[j] || st.lower[j] == st.upper[j] {
                    continue;
                }
                let mut alpha = 0.0;
                for &(r, c) in &st.cols[j] {
                    alpha += rho[r] * c;
                }
                let admissible = match (leave_at_upper, st.at[j]) {
                    (true, NonbasicAt::Lower) | (false, NonbasicAt::Upper) => alpha > PIVOT_TOL,
                    (true, NonbasicAt::Upper) | (false, NonbasicAt::Lower) => alpha < -PIVOT_TOL,
                };
                if !admissible {
                    continue;
                }
                let d = st.reduced_cost(cost, &y, j);
                let ratio = (d / alpha).abs();
                let better = match best {
                    None => true,
                    Some((_, r0, a0)) => {
                        ratio < r0 - 1e-12 || ((ratio - r0).abs() <= 1e-12 && alpha.abs() > a0)
                    }
                };
                if better {
                    best = Some((j, ratio, alpha.abs()));
                }
            }
            let Some((j_in, _, _)) = best else {
                return DualOutcome::Infeasible;
            };
            st.ftran(j_in, &mut w);
            let piv = w[row];
            if piv.abs() <= PIVOT_TOL {
                // The row view (alpha) and column view (w) disagree:
                // the factorization has drifted. Rebuild and retry.
                stalls += 1;
                if stalls > 2 || !st.refactorize() {
                    return DualOutcome::GiveUp;
                }
                continue;
            }
            stalls = 0;
            let bi = st.basis[row];
            let target = if leave_at_upper {
                st.upper[bi]
            } else {
                st.lower[bi]
            };
            let t = (st.xb[row] - target) / piv;
            for (i, (xb, &wi)) in st.xb.iter_mut().zip(w.iter()).enumerate() {
                if i != row {
                    *xb -= t * wi;
                }
            }
            st.xb[row] = st.bound_value(j_in) + t;
            st.push_eta(row, &w);
            st.basis[row] = j_in;
            st.is_basic[j_in] = true;
            st.is_basic[bi] = false;
            st.at[bi] = if leave_at_upper {
                NonbasicAt::Upper
            } else {
                NonbasicAt::Lower
            };
            st.iterations += 1;
            st.pivots_since_refactor += 1;
            if st.needs_refactor() && !st.refactorize() {
                return DualOutcome::GiveUp;
            }
        }
    }

    /// Pivots remaining basic artificials out of the basis where possible.
    fn expel_artificials(&self, st: &mut State) {
        let mut w = vec![0.0; st.m];
        for row in 0..st.m {
            if st.basis[row] < st.art_start {
                continue;
            }
            // Find any non-artificial nonbasic column with a usable pivot
            // element in this row; a degenerate swap at value zero.
            for j in 0..st.art_start {
                if st.is_basic[j] || (st.lower[j] == st.upper[j]) {
                    continue;
                }
                st.ftran(j, &mut w);
                if w[row].abs() > 1e-6 {
                    let old_val = st.xb[row];
                    self.pivot_update(st, j, row, NonbasicAt::Lower, old_val, 0.0, 0.0, &w);
                    st.recompute_xb();
                    break;
                }
            }
            // If no column qualifies the row is redundant and the
            // artificial stays basic, pinned at zero.
        }
    }

    /// Runs the primal simplex loop with the given cost vector.
    fn run_phase(&self, st: &mut State, cost: &[f64]) -> PhaseOutcome {
        let m = st.m;
        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        loop {
            if st.iterations >= self.max_iterations {
                return PhaseOutcome::IterationLimit;
            }
            st.duals(cost, &mut y);

            // Entering variable selection.
            let use_bland = st.degenerate_streak > DEGENERACY_THRESHOLD;
            let mut entering: Option<(usize, f64, f64)> = None; // (col, dir, score)
            for j in 0..st.n_total {
                if st.is_basic[j] || st.lower[j] == st.upper[j] {
                    continue;
                }
                let d = st.reduced_cost(cost, &y, j);
                let (eligible, dir) = match st.at[j] {
                    NonbasicAt::Lower => (d < -COST_TOL, 1.0),
                    NonbasicAt::Upper => (d > COST_TOL, -1.0),
                };
                if !eligible {
                    continue;
                }
                if use_bland {
                    entering = Some((j, dir, d.abs()));
                    break;
                }
                let score = d.abs();
                if entering.is_none_or(|(_, _, s)| score > s) {
                    entering = Some((j, dir, score));
                }
            }
            let Some((j_in, dir, _)) = entering else {
                return PhaseOutcome::Optimal;
            };

            st.ftran(j_in, &mut w);

            // Ratio test: the entering variable moves by t >= 0 in
            // direction `dir` from its current bound.
            let span = st.upper[j_in] - st.lower[j_in];
            let mut t_best = span; // own bound flip (may be +inf)
            let mut leave: Option<(usize, NonbasicAt)> = None; // (row, bound hit)
            for (i, &wi) in w.iter().enumerate().take(m) {
                let delta = dir * wi;
                if delta > PIVOT_TOL {
                    // Basic variable decreases toward its lower bound.
                    let bi = st.basis[i];
                    let slack = st.xb[i] - st.lower[bi];
                    let t = slack / delta;
                    if t < t_best - 1e-12
                        || (use_bland
                            && (t - t_best).abs() <= 1e-12
                            && leave.is_some_and(|(r, _)| st.basis[i] < st.basis[r]))
                    {
                        t_best = t.max(0.0);
                        leave = Some((i, NonbasicAt::Lower));
                    }
                } else if delta < -PIVOT_TOL {
                    // Basic variable increases toward its upper bound.
                    let bi = st.basis[i];
                    if !st.upper[bi].is_finite() {
                        continue;
                    }
                    let slack = st.upper[bi] - st.xb[i];
                    let t = slack / (-delta);
                    if t < t_best - 1e-12
                        || (use_bland
                            && (t - t_best).abs() <= 1e-12
                            && leave.is_some_and(|(r, _)| st.basis[i] < st.basis[r]))
                    {
                        t_best = t.max(0.0);
                        leave = Some((i, NonbasicAt::Upper));
                    }
                }
            }

            if !t_best.is_finite() {
                return PhaseOutcome::Unbounded;
            }
            st.degenerate_streak = if t_best <= FEAS_TOL {
                st.degenerate_streak + 1
            } else {
                0
            };

            let start = st.bound_value(j_in);
            match leave {
                None => {
                    // Bound flip: the entering variable travels its full
                    // span and rests at the opposite bound.
                    for (xb, &wi) in st.xb.iter_mut().zip(w.iter()).take(m) {
                        *xb -= dir * t_best * wi;
                    }
                    st.at[j_in] = match st.at[j_in] {
                        NonbasicAt::Lower => NonbasicAt::Upper,
                        NonbasicAt::Upper => NonbasicAt::Lower,
                    };
                    st.iterations += 1;
                }
                Some((row, hit)) => {
                    let new_val = start + dir * t_best;
                    self.pivot_update(st, j_in, row, hit, new_val, dir, t_best, &w);
                }
            }

            if st.needs_refactor() && !st.refactorize() {
                return PhaseOutcome::IterationLimit;
            }
        }
    }

    /// Performs a full basis change where column `j_in` replaces the basic
    /// variable of `row`, which leaves at bound `hit`. The update appends
    /// one eta factor instead of eliminating a dense inverse.
    #[allow(clippy::too_many_arguments)]
    fn pivot_update(
        &self,
        st: &mut State,
        j_in: usize,
        row: usize,
        hit: NonbasicAt,
        new_val: f64,
        dir: f64,
        t: f64,
        w: &[f64],
    ) {
        let m = st.m;
        let j_out = st.basis[row];
        // Update basic values.
        for (i, (xb, &wi)) in st.xb.iter_mut().zip(w.iter()).enumerate().take(m) {
            if i != row {
                *xb -= dir * t * wi;
            }
        }
        st.xb[row] = new_val;
        st.push_eta(row, w);
        st.basis[row] = j_in;
        st.is_basic[j_in] = true;
        st.is_basic[j_out] = false;
        st.at[j_out] = hit;
        st.iterations += 1;
        st.pivots_since_refactor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, VarKind};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "expected {b}, got {a}");
    }

    #[test]
    fn trivial_unconstrained_min() {
        // min x over [2, 10] -> 2.
        let mut p = Problem::minimize();
        p.add_var(VarKind::Continuous, 2.0, 10.0, 1.0, "x");
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn trivial_unconstrained_max_at_upper() {
        let mut p = Problem::maximize();
        p.add_var(VarKind::Continuous, 0.0, 7.5, 3.0, "x");
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 22.5);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize();
        p.add_var(VarKind::Continuous, 0.0, f64::INFINITY, 1.0, "x");
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn classic_two_var_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6).
        let mut p = Problem::maximize();
        let x = p.add_nonneg(3.0, "x");
        let y = p.add_nonneg(5.0, "y");
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.values[x.index()], 2.0);
        assert_close(s.values[y.index()], 6.0);
    }

    #[test]
    fn ge_and_eq_rows_need_phase_one() {
        // min 2x + 3y s.t. x + y = 10, x >= 3, y >= 2 -> x=8, y=2, obj=22.
        let mut p = Problem::minimize();
        let x = p.add_nonneg(2.0, "x");
        let y = p.add_nonneg(3.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
        p.add_constraint(vec![(y, 1.0)], Cmp::Ge, 2.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 22.0);
        assert_close(s.values[x.index()], 8.0);
        assert_close(s.values[y.index()], 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Continuous, 0.0, 1.0, 1.0, "x");
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 5.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn conflicting_rows_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg(1.0, "x");
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 5.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn bound_overrides_apply() {
        // max x + y, x + y <= 10, with y fixed to [0,0] -> x = 10.
        let mut p = Problem::maximize();
        let x = p.add_nonneg(1.0, "x");
        let y = p.add_nonneg(1.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        let s = Simplex::new(&p).solve_with_bounds(Some(&[(y.index(), 0.0, 0.0)]));
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.values[x.index()], 10.0);
        assert_close(s.values[y.index()], 0.0);
    }

    #[test]
    fn contradictory_override_is_infeasible() {
        let mut p = Problem::maximize();
        let x = p.add_nonneg(1.0, "x");
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 10.0);
        let s = Simplex::new(&p).solve_with_bounds(Some(&[(x.index(), 2.0, 1.0)]));
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -4  (i.e. x >= 4).
        let mut p = Problem::minimize();
        let x = p.add_nonneg(1.0, "x");
        p.add_constraint(vec![(x, -1.0)], Cmp::Le, -4.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate configuration; ensures Bland fallback works.
        let mut p = Problem::maximize();
        let x = p.add_nonneg(0.75, "x1");
        let y = p.add_nonneg(-150.0, "x2");
        let z = p.add_nonneg(0.02, "x3");
        let w = p.add_nonneg(-6.0, "x4");
        p.add_constraint(
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(vec![(z, 1.0)], Cmp::Le, 1.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn equality_with_upper_bounds() {
        // min -x - y s.t. x + y = 1, x,y in [0, 0.6] -> obj -1.
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Continuous, 0.0, 0.6, -1.0, "x");
        let y = p.add_var(VarKind::Continuous, 0.0, 0.6, -1.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 4 stated twice; optimum is unaffected.
        let mut p = Problem::maximize();
        let x = p.add_nonneg(1.0, "x");
        let y = p.add_nonneg(2.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 8.0);
        assert_close(s.values[y.index()], 4.0);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut p = Problem::maximize();
        let x = p.add_var(VarKind::Continuous, 2.5, 2.5, 10.0, "x");
        let y = p.add_nonneg(1.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.values[x.index()], 2.5);
        assert_close(s.values[y.index()], 1.5);
    }

    #[test]
    fn larger_random_like_lp_is_feasible_and_optimal() {
        // Transportation-style LP: 3 sources x 4 sinks.
        let supply = [20.0, 30.0, 25.0];
        let demand = [10.0, 25.0, 15.0, 25.0];
        let cost = [
            [2.0, 3.0, 1.0, 4.0],
            [5.0, 1.0, 3.0, 2.0],
            [2.0, 2.0, 4.0, 1.0],
        ];
        let mut p = Problem::minimize();
        let mut ids = [[None; 4]; 3];
        for i in 0..3 {
            for j in 0..4 {
                ids[i][j] = Some(p.add_nonneg(cost[i][j], format!("x{i}{j}")));
            }
        }
        for i in 0..3 {
            let terms: Vec<_> = (0..4).map(|j| (ids[i][j].unwrap(), 1.0)).collect();
            p.add_constraint(terms, Cmp::Le, supply[i]);
        }
        for j in 0..4 {
            let terms: Vec<_> = (0..3).map(|i| (ids[i][j].unwrap(), 1.0)).collect();
            p.add_constraint(terms, Cmp::Ge, demand[j]);
        }
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        // Verify feasibility and the known optimum (hand-checked: 90, e.g.
        // s0->d2:15@1, s0->d0:5@2, s2->d0:5@2, s2->d3:20@1, s1->d3:5@2,
        // s1->d1:25@1).
        assert!(p.is_feasible(&s.values, 1e-6));
        assert_close(s.objective, 90.0);
        assert!(s.refactorizations >= 1);
        assert_eq!(s.duals.len(), p.num_constraints());
    }

    #[test]
    fn warm_restart_matches_cold_after_bound_change() {
        // Branch-and-bound's exact usage: solve, tighten one variable's
        // bounds, re-solve warm; the warm answer must equal the cold one.
        let mut p = Problem::maximize();
        let x = p.add_var(VarKind::Continuous, 0.0, 10.0, 3.0, "x");
        let y = p.add_var(VarKind::Continuous, 0.0, 10.0, 5.0, "y");
        let z = p.add_var(VarKind::Continuous, 0.0, 10.0, 4.0, "z");
        p.add_constraint(vec![(x, 1.0), (y, 2.0), (z, 1.0)], Cmp::Le, 14.0);
        p.add_constraint(vec![(x, 3.0), (y, 1.0), (z, 2.0)], Cmp::Le, 18.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 3.0)], Cmp::Le, 16.0);
        let sx = Simplex::new(&p);
        let (root, basis) = sx.solve_warm(None, None);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.expect("optimal solve returns a basis");
        for overrides in [
            vec![(x.index(), 0.0, 2.0)],
            vec![(y.index(), 3.0, 10.0)],
            vec![(x.index(), 1.0, 1.0), (z.index(), 0.0, 4.0)],
        ] {
            let cold = sx.solve_with_bounds(Some(&overrides));
            let (warm, warm_basis) = sx.solve_warm(Some(&overrides), Some(&basis));
            assert_eq!(warm.status, cold.status);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(warm_basis.is_some());
        }
    }

    #[test]
    fn warm_restart_detects_infeasible_bounds() {
        // max x + y, x + y <= 4; forcing both >= 3 is infeasible.
        let mut p = Problem::maximize();
        let x = p.add_var(VarKind::Continuous, 0.0, 5.0, 1.0, "x");
        let y = p.add_var(VarKind::Continuous, 0.0, 5.0, 1.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let sx = Simplex::new(&p);
        let (root, basis) = sx.solve_warm(None, None);
        assert_eq!(root.status, LpStatus::Optimal);
        let overrides = [(x.index(), 3.0, 5.0), (y.index(), 3.0, 5.0)];
        let (warm, warm_basis) = sx.solve_warm(Some(&overrides), basis.as_ref());
        assert_eq!(warm.status, LpStatus::Infeasible);
        assert!(warm_basis.is_none());
    }

    #[test]
    fn warm_restart_with_equality_rows() {
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Continuous, 0.0, 6.0, 2.0, "x");
        let y = p.add_var(VarKind::Continuous, 0.0, 6.0, 3.0, "y");
        let z = p.add_var(VarKind::Continuous, 0.0, 6.0, 1.0, "z");
        p.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Eq, 8.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        let sx = Simplex::new(&p);
        let (root, basis) = sx.solve_warm(None, None);
        assert_eq!(root.status, LpStatus::Optimal);
        let overrides = [(z.index(), 0.0, 2.0)];
        let cold = sx.solve_with_bounds(Some(&overrides));
        let (warm, _) = sx.solve_warm(Some(&overrides), basis.as_ref());
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_close(warm.objective, cold.objective);
    }

    #[test]
    fn mismatched_basis_snapshot_is_ignored() {
        let mut p1 = Problem::maximize();
        let a = p1.add_nonneg(1.0, "a");
        p1.add_constraint(vec![(a, 1.0)], Cmp::Le, 3.0);
        let (_, basis) = Simplex::new(&p1).solve_warm(None, None);

        let mut p2 = Problem::maximize();
        let x = p2.add_nonneg(1.0, "x");
        let y = p2.add_nonneg(2.0, "y");
        p2.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        p2.add_constraint(vec![(y, 1.0)], Cmp::Le, 2.0);
        let (sol, _) = Simplex::new(&p2).solve_warm(None, basis.as_ref());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 7.0);
    }

    #[test]
    fn duals_certify_small_lp() {
        // min 2x + 3y s.t. x + y >= 4, x,y >= 0 -> optimum 8 at (4, 0);
        // the dual price of the covering row is 2.
        let mut p = Problem::minimize();
        let x = p.add_nonneg(2.0, "x");
        let y = p.add_nonneg(3.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let s = Simplex::new(&p).solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 8.0);
        assert_eq!(s.duals.len(), 1);
        assert_close(s.duals[0], 2.0);
    }
}
