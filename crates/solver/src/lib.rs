//! An exact mixed-integer linear-programming (MILP) solver.
//!
//! This crate is the CPLEX substitute used by Medea's ILP-based scheduler
//! (see the paper's §5.2 and §6: the authors rely on the proprietary CPLEX
//! solver, which this reproduction replaces with an open implementation).
//! It provides:
//!
//! - [`Problem`]: an incremental LP/MILP builder with bounded continuous,
//!   integer, and binary variables and `<=`, `==`, `>=` rows.
//! - [`Simplex`]: a two-phase primal simplex for *bounded* variables, so
//!   binary variables and branching bounds need no extra rows.
//! - [`Milp`]: best-bound branch and bound with wall-clock deadline, node
//!   limit, and anytime incumbent reporting.
//!
//! # Examples
//!
//! ```
//! use medea_solver::{Problem, Cmp, Milp, MilpStatus};
//!
//! // Place two "containers" on two "nodes", at most one per node,
//! // maximizing a simple preference score.
//! let mut p = Problem::maximize();
//! let x00 = p.add_binary(2.0, "c0@n0");
//! let x01 = p.add_binary(1.0, "c0@n1");
//! let x10 = p.add_binary(1.0, "c1@n0");
//! let x11 = p.add_binary(2.0, "c1@n1");
//! p.add_constraint(vec![(x00, 1.0), (x01, 1.0)], Cmp::Eq, 1.0);
//! p.add_constraint(vec![(x10, 1.0), (x11, 1.0)], Cmp::Eq, 1.0);
//! p.add_constraint(vec![(x00, 1.0), (x10, 1.0)], Cmp::Le, 1.0);
//! p.add_constraint(vec![(x01, 1.0), (x11, 1.0)], Cmp::Le, 1.0);
//! let sol = Milp::new(&p).solve().unwrap();
//! assert_eq!(sol.status, MilpStatus::Optimal);
//! assert_eq!(sol.objective.round() as i64, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod instrument;
mod milp;
mod presolve;
mod problem;
mod simplex;

pub use instrument::{SolveEvent, SolveInstrumentation};
pub use milp::{Milp, MilpSolution, MilpStatus, INT_TOL};
pub use presolve::{presolve, PresolveStats};
pub use problem::{
    Cmp, Constraint, ConstraintId, Problem, ProblemError, Sense, VarId, VarKind, Variable,
};
pub use simplex::{Basis, LpSolution, LpStatus, Simplex, COST_TOL, FEAS_TOL};
