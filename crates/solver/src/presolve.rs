//! Presolve: problem reductions applied before the simplex/branch-and-
//! bound machinery.
//!
//! The scheduler's models contain many rows that presolve can discharge —
//! singleton rows become bound tightenings, rows whose activity bounds
//! already imply them are redundant, and variables whose bounds coincide
//! can be substituted out of every row. Reductions never change the set
//! of optimal solutions; they only shrink the work the simplex does.

use crate::problem::{Cmp, Problem, VarKind};

/// Summary of the reductions applied by [`presolve`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Rows removed because their activity bounds already imply them.
    pub redundant_rows: usize,
    /// Rows with no terms, discharged by comparing `0` against the rhs.
    pub empty_rows: usize,
    /// Singleton rows converted into variable-bound tightenings.
    pub singleton_rows: usize,
    /// Variables fixed by bound tightening (lower == upper afterwards).
    pub fixed_vars: usize,
    /// `true` if presolve proved the problem infeasible.
    pub proven_infeasible: bool,
}

/// Applies presolve reductions in place; returns what was done.
///
/// The reductions:
/// 1. **Singleton rows** `a x <= b` (one term) tighten `x`'s bounds and
///    are dropped.
/// 2. **Integer bound rounding**: integral variables get their bounds
///    rounded inward (`ceil(lower)`, `floor(upper)`).
/// 3. **Redundant rows**: a row whose worst-case activity still satisfies
///    it is dropped.
/// 4. **Infeasibility detection**: a row whose best-case activity cannot
///    satisfy it, or a variable whose bounds cross, proves infeasibility.
///
/// # Examples
///
/// ```
/// use medea_solver::{presolve, Problem, Cmp, VarKind};
///
/// let mut p = Problem::maximize();
/// let x = p.add_var(VarKind::Integer, 0.0, 100.0, 1.0, "x");
/// p.add_constraint(vec![(x, 2.0)], Cmp::Le, 9.0); // singleton: x <= 4.5
/// let stats = presolve(&mut p);
/// assert_eq!(stats.singleton_rows, 1);
/// assert_eq!(p.var(x).upper, 4.0); // rounded for integrality
/// assert_eq!(p.num_constraints(), 0);
/// ```
pub fn presolve(problem: &mut Problem) -> PresolveStats {
    let mut stats = PresolveStats::default();
    // Round integral bounds inward first.
    for v in problem.vars.iter_mut() {
        if matches!(v.kind, VarKind::Integer | VarKind::Binary) {
            v.lower = v.lower.ceil();
            if v.upper.is_finite() {
                v.upper = v.upper.floor();
            }
        }
    }

    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 10 {
        changed = false;
        rounds += 1;

        // Pass 1: singleton rows -> bound tightenings. Empty rows (all
        // terms cancelled or eliminated upstream) are discharged here by
        // comparing their fixed activity `0` against the rhs: the
        // activity-bound pass below would keep an empty `== 0` row alive
        // forever, and every empty row that reaches the simplex costs a
        // basis slot (and an artificial column when its slack can't
        // satisfy it at zero).
        let mut keep = Vec::with_capacity(problem.constraints.len());
        for c in std::mem::take(&mut problem.constraints) {
            if c.terms.is_empty() {
                let satisfied = match c.cmp {
                    Cmp::Le => 0.0 <= c.rhs + 1e-9,
                    Cmp::Ge => 0.0 >= c.rhs - 1e-9,
                    Cmp::Eq => c.rhs.abs() <= 1e-9,
                };
                stats.empty_rows += 1;
                if !satisfied {
                    stats.proven_infeasible = true;
                }
                continue;
            }
            if c.terms.len() == 1 {
                let (var, coeff) = c.terms[0];
                let v = &mut problem.vars[var.0];
                let bound = c.rhs / coeff;
                let (tight_lo, tight_hi) = match (c.cmp, coeff > 0.0) {
                    (Cmp::Le, true) | (Cmp::Ge, false) => (f64::NEG_INFINITY, bound),
                    (Cmp::Le, false) | (Cmp::Ge, true) => (bound, f64::INFINITY),
                    (Cmp::Eq, _) => (bound, bound),
                };
                let mut lo = v.lower.max(tight_lo);
                let mut hi = v.upper.min(tight_hi);
                if matches!(v.kind, VarKind::Integer | VarKind::Binary) {
                    lo = lo.ceil();
                    hi = if hi.is_finite() { hi.floor() } else { hi };
                }
                if lo != v.lower || hi != v.upper {
                    if (v.lower, v.upper) != (lo, hi) {
                        changed = true;
                    }
                    v.lower = lo;
                    v.upper = hi;
                }
                if v.lower == v.upper {
                    stats.fixed_vars += 1;
                }
                stats.singleton_rows += 1;
                if v.lower > v.upper + 1e-9 {
                    stats.proven_infeasible = true;
                }
                continue;
            }
            keep.push(c);
        }
        problem.constraints = keep;
        if stats.proven_infeasible {
            return stats;
        }

        // Pass 2: activity-bound analysis.
        let mut keep = Vec::with_capacity(problem.constraints.len());
        for c in std::mem::take(&mut problem.constraints) {
            let (mut min_act, mut max_act) = (0.0f64, 0.0f64);
            for &(var, coeff) in &c.terms {
                let v = &problem.vars[var.0];
                let (lo, hi) = (v.lower, v.upper);
                if coeff > 0.0 {
                    min_act += coeff * lo;
                    max_act += if hi.is_finite() {
                        coeff * hi
                    } else {
                        f64::INFINITY
                    };
                } else {
                    min_act += if hi.is_finite() {
                        coeff * hi
                    } else {
                        f64::NEG_INFINITY
                    };
                    max_act += coeff * lo;
                }
            }
            let redundant = match c.cmp {
                Cmp::Le => max_act <= c.rhs + 1e-9,
                Cmp::Ge => min_act >= c.rhs - 1e-9,
                Cmp::Eq => false,
            };
            if redundant {
                stats.redundant_rows += 1;
                changed = true;
                continue;
            }
            let infeasible = match c.cmp {
                Cmp::Le => min_act > c.rhs + 1e-9,
                Cmp::Ge => max_act < c.rhs - 1e-9,
                Cmp::Eq => min_act > c.rhs + 1e-9 || max_act < c.rhs - 1e-9,
            };
            if infeasible {
                stats.proven_infeasible = true;
            }
            keep.push(c);
        }
        problem.constraints = keep;
        if stats.proven_infeasible {
            return stats;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::milp::{Milp, MilpStatus};

    #[test]
    fn singleton_eq_fixes_variable() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg(1.0, "x");
        p.add_constraint(vec![(x, 2.0)], Cmp::Eq, 6.0);
        let stats = presolve(&mut p);
        assert_eq!(stats.singleton_rows, 1);
        assert_eq!(stats.fixed_vars, 1);
        assert_eq!(p.var(x).lower, 3.0);
        assert_eq!(p.var(x).upper, 3.0);
        assert_eq!(p.num_constraints(), 0);
    }

    #[test]
    fn negative_coefficient_singleton() {
        // -2x <= -6  =>  x >= 3.
        let mut p = Problem::minimize();
        let x = p.add_nonneg(1.0, "x");
        p.add_constraint(vec![(x, -2.0)], Cmp::Le, -6.0);
        presolve(&mut p);
        assert_eq!(p.var(x).lower, 3.0);
    }

    #[test]
    fn redundant_row_dropped() {
        let mut p = Problem::minimize();
        let x = p.add_binary(1.0, "x");
        let y = p.add_binary(1.0, "y");
        // x + y <= 5 can never bind for binaries.
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        let stats = presolve(&mut p);
        assert_eq!(stats.redundant_rows, 1);
        assert_eq!(p.num_constraints(), 0);
    }

    #[test]
    fn infeasible_row_detected() {
        let mut p = Problem::minimize();
        let x = p.add_binary(1.0, "x");
        let y = p.add_binary(1.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
        let stats = presolve(&mut p);
        assert!(stats.proven_infeasible);
    }

    #[test]
    fn crossing_bounds_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Integer, 0.0, 10.0, 1.0, "x");
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 7.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0);
        let stats = presolve(&mut p);
        assert!(stats.proven_infeasible);
    }

    #[test]
    fn integer_bounds_rounded_inward() {
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Integer, 0.3, 4.7, 1.0, "x");
        presolve(&mut p);
        assert_eq!(p.var(x).lower, 1.0);
        assert_eq!(p.var(x).upper, 4.0);
    }

    #[test]
    fn presolve_preserves_optimum() {
        // Knapsack with a redundant row and two singletons sprinkled in.
        let build = || {
            let mut p = Problem::maximize();
            let a = p.add_binary(10.0, "a");
            let b = p.add_binary(13.0, "b");
            let c = p.add_binary(7.0, "c");
            p.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
            p.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Cmp::Le, 10.0); // redundant
            p.add_constraint(vec![(c, 1.0)], Cmp::Le, 1.0); // vacuous singleton
            p
        };
        let plain = Milp::new(&build()).solve().unwrap();
        let mut reduced = build();
        let stats = presolve(&mut reduced);
        assert!(stats.redundant_rows >= 1);
        let solved = Milp::new(&reduced).solve().unwrap();
        assert_eq!(plain.status, MilpStatus::Optimal);
        assert_eq!(solved.status, MilpStatus::Optimal);
        assert!((plain.objective - solved.objective).abs() < 1e-9);
    }

    #[test]
    fn empty_rows_discharged_by_rhs_sign() {
        let mut p = Problem::minimize();
        let _x = p.add_nonneg(1.0, "x");
        p.add_constraint(Vec::new(), Cmp::Le, 0.5); // 0 <= 0.5: vacuous
        p.add_constraint(Vec::new(), Cmp::Eq, 0.0); // 0 == 0: vacuous
        p.add_constraint(Vec::new(), Cmp::Ge, -1.0); // 0 >= -1: vacuous
        let stats = presolve(&mut p);
        assert_eq!(stats.empty_rows, 3);
        assert!(!stats.proven_infeasible);
        assert_eq!(p.num_constraints(), 0);
    }

    #[test]
    fn infeasible_empty_row_detected() {
        let mut p = Problem::minimize();
        let _x = p.add_nonneg(1.0, "x");
        p.add_constraint(Vec::new(), Cmp::Ge, 2.0); // 0 >= 2: impossible
        let stats = presolve(&mut p);
        assert!(stats.proven_infeasible);
    }

    #[test]
    fn chained_tightening_converges() {
        // x <= 3 (singleton), then x + y >= 5 with y <= 1 becomes
        // infeasible only after the singleton lands: y >= 2 > 1.
        let mut p = Problem::minimize();
        let x = p.add_nonneg(1.0, "x");
        let y = p.add_var(VarKind::Continuous, 0.0, 1.0, 1.0, "y");
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let stats = presolve(&mut p);
        assert!(stats.proven_infeasible);
    }
}
