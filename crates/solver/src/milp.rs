//! Branch-and-bound solver for mixed-integer linear programs.
//!
//! The search solves LP relaxations with [`crate::simplex::Simplex`],
//! branches on the most fractional integer variable, and explores nodes
//! best-bound-first with an initial depth-first dive so that an incumbent is
//! found early. The solver is *anytime*: it honours a wall-clock deadline
//! and a node limit and reports the best incumbent found so far, which is
//! exactly how Medea's LRA scheduler uses it (a scheduling interval bounds
//! the time available for placement).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::instrument::{SolveEvent, SolveInstrumentation};
use crate::problem::{Problem, Sense, VarId};
use crate::simplex::{Basis, LpSolution, LpStatus, Simplex};

/// Integrality tolerance: a value within this distance of an integer is
/// considered integral.
pub const INT_TOL: f64 = 1e-6;

/// Outcome status of a mixed-integer solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal integral solution.
    Optimal,
    /// A feasible integral solution was found, but the search stopped on a
    /// limit before proving optimality.
    Feasible,
    /// No integral feasible point exists.
    Infeasible,
    /// The relaxation (and hence the MILP) is unbounded.
    Unbounded,
    /// A limit was hit before any integral solution was found.
    NoSolutionFound,
}

/// Result of a mixed-integer solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Solve status.
    pub status: MilpStatus,
    /// Values of the problem's variables (empty unless a solution exists).
    pub values: Vec<f64>,
    /// Objective in the problem's original sense.
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Best proven bound on the optimum (original sense).
    pub best_bound: f64,
    /// Total wall-clock time of the solve.
    pub elapsed: Duration,
    /// Basis snapshot of the root relaxation, if it solved to optimality.
    /// Feed it to [`Milp::with_warm_basis`] on a structurally identical
    /// problem (e.g. the next scheduling round) to skip the cold start.
    pub root_basis: Option<Basis>,
}

impl MilpSolution {
    /// Returns the value of a variable in the incumbent solution.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available or the handle is out of range.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Returns `true` if an integral feasible solution is available.
    pub fn has_solution(&self) -> bool {
        matches!(self.status, MilpStatus::Optimal | MilpStatus::Feasible)
    }
}

/// A branch-and-bound node: a set of bound overrides on the base problem.
#[derive(Debug, Clone)]
struct Node {
    /// Overrides as `(var index, lower, upper)`.
    bounds: Vec<(usize, f64, f64)>,
    /// LP bound of the parent (minimization form); used for ordering.
    bound: f64,
    depth: usize,
    /// Optimal basis of the parent's LP relaxation; the child LP
    /// warm-starts from it and dual-simplex-repairs the one changed bound
    /// instead of re-solving from scratch.
    basis: Option<Arc<Basis>>,
}

/// Heap ordering: smaller minimization bound is better; deeper first on tie
/// (keeps the dive property).
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound && self.0.depth == other.0.depth
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert the bound comparison.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
    }
}

/// Branch-and-bound MILP solver with deadline and node limits.
///
/// # Examples
///
/// ```
/// use medea_solver::{Problem, Cmp, Milp};
///
/// // 0-1 knapsack: max 10a + 13b + 7c, 3a + 4b + 2c <= 6.
/// let mut p = Problem::maximize();
/// let a = p.add_binary(10.0, "a");
/// let b = p.add_binary(13.0, "b");
/// let c = p.add_binary(7.0, "c");
/// p.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
/// let sol = Milp::new(&p).solve().unwrap();
/// assert_eq!(sol.objective.round() as i64, 20);
/// ```
pub struct Milp<'a> {
    problem: &'a Problem,
    deadline: Option<Duration>,
    node_limit: usize,
    /// Relative optimality gap at which the search stops early.
    gap_tol: f64,
    /// Optional MIP start: `(var index, value)` fixings of a known-good
    /// partial solution (see [`Milp::with_start`]).
    start: Option<Vec<(usize, f64)>>,
    /// Optional complete initial point (see [`Milp::with_incumbent`]).
    incumbent_point: Option<Vec<f64>>,
    /// Root bound overrides applied to the entire search.
    root_bounds: Vec<(usize, f64, f64)>,
    /// Optional basis snapshot seeding the root relaxation (see
    /// [`Milp::with_warm_basis`]).
    warm_basis: Option<Basis>,
    /// Optional event sink (see [`SolveInstrumentation`]); `None` costs
    /// nothing on the hot path.
    instrumentation: Option<&'a dyn SolveInstrumentation>,
}

impl<'a> Milp<'a> {
    /// Creates a solver for the given problem with default limits.
    pub fn new(problem: &'a Problem) -> Self {
        Milp {
            problem,
            deadline: None,
            node_limit: 200_000,
            gap_tol: 1e-6,
            start: None,
            incumbent_point: None,
            root_bounds: Vec::new(),
            warm_basis: None,
            instrumentation: None,
        }
    }

    /// Seeds the root relaxation with a basis snapshot from a previous
    /// solve of a structurally identical problem (same variables, same
    /// rows). An incompatible snapshot is silently ignored, so this is
    /// always safe to pass.
    pub fn with_warm_basis(mut self, basis: Basis) -> Self {
        self.warm_basis = Some(basis);
        self
    }

    /// Attaches an instrumentation sink receiving [`SolveEvent`]s
    /// (simplex pivots, nodes explored/pruned, incumbent improvements,
    /// limit hits) during [`Milp::solve`].
    pub fn with_instrumentation(mut self, sink: &'a dyn SolveInstrumentation) -> Self {
        self.instrumentation = Some(sink);
        self
    }

    /// Emits an event to the attached sink, if any.
    fn emit(&self, event: SolveEvent) {
        if let Some(sink) = self.instrumentation {
            sink.record(event);
        }
    }

    /// Emits the per-LP-solve event group (pivots, refactorizations, and
    /// whether a warm basis seeded the solve).
    fn emit_lp(&self, lp: &LpSolution, warm: bool) {
        if self.instrumentation.is_none() {
            return;
        }
        self.emit(SolveEvent::SimplexPivots(lp.iterations as u64));
        if lp.refactorizations > 0 {
            self.emit(SolveEvent::Refactorizations(lp.refactorizations as u64));
        }
        if warm {
            self.emit(SolveEvent::WarmStartUsed);
        }
    }

    /// Provides a complete known-feasible point as the initial incumbent.
    ///
    /// Unlike [`Milp::with_start`] (which fixes a subset of variables and
    /// solves for the rest), the point must assign every variable; it is
    /// verified with [`Problem::is_feasible`] and silently ignored if it
    /// does not check out.
    pub fn with_incumbent(mut self, point: Vec<f64>) -> Self {
        self.incumbent_point = Some(point);
        self
    }

    /// Provides a MIP start: variable fixings from a heuristic solution.
    ///
    /// Before the main search, the solver fixes these variables, solves
    /// the restricted subproblem quickly, and adopts the result as the
    /// initial incumbent. The main search then only has to *improve* on
    /// the heuristic, which makes the solver anytime: with a tight
    /// deadline it degrades to heuristic quality instead of failing.
    pub fn with_start(mut self, fixings: Vec<(usize, f64)>) -> Self {
        self.start = Some(fixings);
        self
    }

    /// Applies bound overrides to the whole search (all nodes).
    pub fn with_root_bounds(mut self, bounds: Vec<(usize, f64, f64)>) -> Self {
        self.root_bounds = bounds;
        self
    }

    /// Sets a wall-clock time limit; the best incumbent found before the
    /// deadline is returned with [`MilpStatus::Feasible`].
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Sets the maximum number of branch-and-bound nodes.
    pub fn node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets the relative optimality gap at which the search may stop.
    pub fn gap(mut self, gap: f64) -> Self {
        self.gap_tol = gap;
        self
    }

    /// Runs branch and bound and returns the best solution found.
    ///
    /// Errors are limited to problem-validation failures; solver-side
    /// conditions (infeasible, unbounded, limits) are reported in
    /// [`MilpSolution::status`].
    pub fn solve(&self) -> Result<MilpSolution, crate::problem::ProblemError> {
        self.problem.validate()?;
        let start = Instant::now();
        let p = self.problem;
        let sign = match p.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let int_vars: Vec<usize> = p
            .vars()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_integral())
            .map(|(i, _)| i)
            .collect();

        let simplex = Simplex::new(p);

        // Root relaxation, warm-started from the caller's snapshot when
        // one is available (the cross-round cache in the scheduler).
        let (root, root_basis) = simplex.solve_warm(
            if self.root_bounds.is_empty() {
                None
            } else {
                Some(&self.root_bounds)
            },
            self.warm_basis.as_ref(),
        );
        self.emit_lp(&root, self.warm_basis.is_some());
        match root.status {
            LpStatus::Infeasible => {
                return Ok(self.finish(MilpStatus::Infeasible, None, f64::NAN, 0, start))
            }
            LpStatus::Unbounded => {
                return Ok(self.finish(MilpStatus::Unbounded, None, f64::NAN, 0, start))
            }
            LpStatus::IterationLimit => {
                return Ok(self.finish(MilpStatus::NoSolutionFound, None, f64::NAN, 0, start))
            }
            LpStatus::Optimal => {}
        }

        let mut incumbent: Option<(Vec<f64>, f64)> = None; // (values, min-form obj)
        let mut heap = BinaryHeap::new();
        let mut nodes = 0usize;
        let mut best_bound = sign * root.objective;

        // Complete initial point, if provided and feasible.
        if let Some(point) = &self.incumbent_point {
            if point.len() == p.num_vars() && p.is_feasible(point, 1e-6) {
                let obj = sign * p.objective_value(point);
                incumbent = Some((point.clone(), obj));
                self.emit(SolveEvent::IncumbentImproved);
            } else if std::env::var_os("MEDEA_SOLVER_DEBUG").is_some() {
                eprintln!(
                    "milp: rejected infeasible incumbent point (len {} vs {})",
                    point.len(),
                    p.num_vars()
                );
            }
        }

        // MIP start: solve the subproblem with the caller's fixings and
        // adopt its solution as the initial incumbent.
        if let Some(fixings) = &self.start {
            let mut bounds = self.root_bounds.clone();
            for &(j, v) in fixings {
                set_override(&mut bounds, j, v, v);
            }
            let warm = Milp {
                problem: p,
                deadline: Some(
                    self.deadline
                        .map(|d| d / 2)
                        .unwrap_or(Duration::from_secs(1)),
                ),
                node_limit: 400,
                gap_tol: self.gap_tol.max(1e-4),
                start: None,
                incumbent_point: None,
                root_bounds: bounds,
                // The fixings only tighten bounds, so the root basis is
                // dual feasible for the sub-solve too.
                warm_basis: root_basis.clone(),
                instrumentation: self.instrumentation,
            };
            if let Ok(sol) = warm.solve() {
                if sol.has_solution() && p.is_feasible(&sol.values, 1e-6) {
                    let obj = sign * sol.objective;
                    if incumbent.as_ref().is_none_or(|(_, inc)| obj < *inc) {
                        incumbent = Some((sol.values.clone(), obj));
                        self.emit(SolveEvent::IncumbentImproved);
                    }
                }
            }
        }

        // Initial depth-first dive: follow rounded branches from the root
        // until an integral leaf (or dead end), pushing siblings onto the
        // heap. This produces an early incumbent so that best-first
        // pruning is effective from the start.
        let shared_root_basis = root_basis.clone().map(Arc::new);
        {
            let mut cur = Node {
                bounds: self.root_bounds.clone(),
                bound: sign * root.objective,
                depth: 0,
                basis: shared_root_basis.clone(),
            };
            let max_dive = 4 * int_vars.len() + 8;
            let mut steps = 0;
            loop {
                if steps >= max_dive {
                    // Dive budget exhausted: return the remaining subtree
                    // to the heap so the search stays exhaustive.
                    heap.push(HeapNode(cur));
                    break;
                }
                steps += 1;
                if let Some(d) = self.deadline {
                    if start.elapsed() >= d {
                        self.emit(SolveEvent::DeadlineHit);
                        heap.push(HeapNode(cur));
                        break;
                    }
                }
                let (lp, lp_basis) = simplex.solve_warm(Some(&cur.bounds), cur.basis.as_deref());
                self.emit_lp(&lp, cur.basis.is_some());
                if lp.status != LpStatus::Optimal {
                    self.emit(SolveEvent::NodePruned);
                    break;
                }
                let lp_basis = lp_basis.map(Arc::new);
                nodes += 1;
                self.emit(SolveEvent::NodeExplored);
                let node_obj = sign * lp.objective;
                // Rounding heuristic: try the nearest integral point.
                self.try_rounded(&lp.values, &int_vars, sign, &mut incumbent);
                let mut branch: Option<(usize, f64, f64)> = None;
                for &j in &int_vars {
                    let v = lp.values[j];
                    let frac = (v - v.round()).abs();
                    if frac > INT_TOL {
                        let score = (v - v.floor() - 0.5).abs();
                        if branch.is_none_or(|(_, _, s)| score < s) {
                            branch = Some((j, v, score));
                        }
                    }
                }
                let Some((j, v, _)) = branch else {
                    // Integral leaf: incumbent.
                    let mut vals = lp.values.clone();
                    for &jj in &int_vars {
                        vals[jj] = vals[jj].round();
                    }
                    let obj = sign * p.objective_value(&vals);
                    if incumbent.as_ref().is_none_or(|(_, inc)| obj < *inc) {
                        incumbent = Some((vals, obj));
                        self.emit(SolveEvent::IncumbentImproved);
                    }
                    break;
                };
                let floor = v.floor();
                let ceil = floor + 1.0;
                let (lo, up) = self.effective_bounds(&cur.bounds, j);
                // Dive toward the rounded value; push the sibling.
                let dive_up = v - floor >= 0.5;
                let mut sib = cur.bounds.clone();
                let mut div = cur.bounds.clone();
                if dive_up {
                    set_override(&mut div, j, ceil.min(up), up);
                    set_override(&mut sib, j, lo, floor.max(lo));
                } else {
                    set_override(&mut div, j, lo, floor.max(lo));
                    set_override(&mut sib, j, ceil.min(up), up);
                }
                heap.push(HeapNode(Node {
                    bounds: sib,
                    bound: node_obj,
                    depth: cur.depth + 1,
                    basis: lp_basis.clone(),
                }));
                cur = Node {
                    bounds: div,
                    bound: node_obj,
                    depth: cur.depth + 1,
                    basis: lp_basis,
                };
            }
        }

        while let Some(HeapNode(node)) = heap.pop() {
            // Global best bound is the minimum over the heap and the node
            // being expanded (heap is best-first, so this node's bound).
            best_bound = node.bound;
            if let Some((_, inc_obj)) = &incumbent {
                // Prune by bound, and stop on gap.
                if node.bound >= inc_obj - self.gap_abs(*inc_obj) {
                    best_bound = *inc_obj;
                    break;
                }
            }
            if nodes >= self.node_limit {
                self.emit(SolveEvent::NodeLimitHit);
                break;
            }
            if let Some(d) = self.deadline {
                if start.elapsed() >= d {
                    self.emit(SolveEvent::DeadlineHit);
                    break;
                }
            }
            nodes += 1;
            self.emit(SolveEvent::NodeExplored);

            let (lp, lp_basis) = simplex.solve_warm(Some(&node.bounds), node.basis.as_deref());
            self.emit_lp(&lp, node.basis.is_some());
            match lp.status {
                LpStatus::Infeasible => {
                    self.emit(SolveEvent::NodePruned);
                    continue;
                }
                LpStatus::Unbounded => {
                    // With an incumbent this cannot improve reporting;
                    // without one the whole MILP may be unbounded, but for
                    // bounded-variable integer programs (Medea's case) this
                    // indicates continuous unboundedness: report it.
                    if incumbent.is_none() {
                        return Ok(self.finish(
                            MilpStatus::Unbounded,
                            None,
                            f64::NAN,
                            nodes,
                            start,
                        ));
                    }
                    self.emit(SolveEvent::NodePruned);
                    continue;
                }
                LpStatus::IterationLimit => {
                    self.emit(SolveEvent::NodePruned);
                    continue;
                }
                LpStatus::Optimal => {}
            }
            let node_obj = sign * lp.objective;
            if let Some((_, inc_obj)) = &incumbent {
                if node_obj >= inc_obj - self.gap_abs(*inc_obj) {
                    self.emit(SolveEvent::NodePruned);
                    continue;
                }
            }
            self.try_rounded(&lp.values, &int_vars, sign, &mut incumbent);

            // Find the most fractional integer variable.
            let mut branch: Option<(usize, f64, f64)> = None; // (var, value, frac score)
            for &j in &int_vars {
                let v = lp.values[j];
                let frac = (v - v.round()).abs();
                if frac > INT_TOL {
                    let score = (v - v.floor() - 0.5).abs(); // closer to .5 is better
                    if branch.is_none_or(|(_, _, s)| score < s) {
                        branch = Some((j, v, score));
                    }
                }
            }

            match branch {
                None => {
                    // Integral: new incumbent.
                    let mut vals = lp.values.clone();
                    for &j in &int_vars {
                        vals[j] = vals[j].round();
                    }
                    let obj = sign * p.objective_value(&vals);
                    let better = incumbent.as_ref().is_none_or(|(_, inc)| obj < *inc - 1e-12);
                    if better {
                        incumbent = Some((vals, obj));
                        self.emit(SolveEvent::IncumbentImproved);
                    }
                }
                Some((j, v, _)) => {
                    let floor = v.floor();
                    let (base_lo, base_up) = self.effective_bounds(&node.bounds, j);
                    // Both children inherit this node's optimal basis: the
                    // bound change keeps it dual feasible, so each child LP
                    // is a short dual-simplex repair.
                    let child_basis = lp_basis.map(Arc::new);
                    // Down child: x_j <= floor(v).
                    if floor >= base_lo - INT_TOL {
                        let mut b = node.bounds.clone();
                        set_override(&mut b, j, base_lo, floor);
                        heap.push(HeapNode(Node {
                            bounds: b,
                            bound: node_obj,
                            depth: node.depth + 1,
                            basis: child_basis.clone(),
                        }));
                    }
                    // Up child: x_j >= ceil(v).
                    let ceil = floor + 1.0;
                    if ceil <= base_up + INT_TOL {
                        let mut b = node.bounds;
                        set_override(&mut b, j, ceil, base_up);
                        heap.push(HeapNode(Node {
                            bounds: b,
                            bound: node_obj,
                            depth: node.depth + 1,
                            basis: child_basis,
                        }));
                    }
                }
            }
        }

        let elapsed_nodes = nodes;
        match incumbent {
            Some((vals, obj)) => {
                let proven = heap
                    .peek()
                    .is_none_or(|HeapNode(n)| n.bound >= obj - self.gap_abs(obj));
                let status = if proven {
                    MilpStatus::Optimal
                } else {
                    MilpStatus::Feasible
                };
                let bb = if proven { obj } else { best_bound };
                Ok(MilpSolution {
                    status,
                    objective: sign * obj,
                    values: vals,
                    nodes: elapsed_nodes,
                    best_bound: sign * bb,
                    elapsed: start.elapsed(),
                    root_basis,
                })
            }
            None => {
                let exhausted = heap.is_empty()
                    && elapsed_nodes < self.node_limit
                    && self.deadline.is_none_or(|d| start.elapsed() < d);
                let status = if exhausted {
                    MilpStatus::Infeasible
                } else {
                    MilpStatus::NoSolutionFound
                };
                Ok(self.finish(status, None, sign * best_bound, elapsed_nodes, start))
            }
        }
    }

    /// Rounding heuristic: rounds every integer variable of an LP point to
    /// the nearest integer; adopts the point as incumbent if it is feasible
    /// and better. `incumbent` stores minimization-form objectives.
    fn try_rounded(
        &self,
        lp_values: &[f64],
        int_vars: &[usize],
        sign: f64,
        incumbent: &mut Option<(Vec<f64>, f64)>,
    ) {
        let mut vals = lp_values.to_vec();
        let mut any_frac = false;
        for &j in int_vars {
            if (vals[j] - vals[j].round()).abs() > INT_TOL {
                any_frac = true;
            }
            vals[j] = vals[j].round();
        }
        if !any_frac {
            return; // The caller handles integral points exactly.
        }
        if !self.problem.is_feasible(&vals, 1e-6) {
            return;
        }
        let obj = sign * self.problem.objective_value(&vals);
        if incumbent.as_ref().is_none_or(|(_, inc)| obj < *inc - 1e-12) {
            *incumbent = Some((vals, obj));
            self.emit(SolveEvent::IncumbentImproved);
        }
    }

    fn gap_abs(&self, incumbent: f64) -> f64 {
        self.gap_tol * incumbent.abs().max(1.0)
    }

    fn effective_bounds(&self, overrides: &[(usize, f64, f64)], j: usize) -> (f64, f64) {
        overrides
            .iter()
            .rev()
            .find(|&&(v, _, _)| v == j)
            .map(|&(_, lo, up)| (lo, up))
            .or_else(|| {
                self.root_bounds
                    .iter()
                    .rev()
                    .find(|&&(v, _, _)| v == j)
                    .map(|&(_, lo, up)| (lo, up))
            })
            .unwrap_or_else(|| {
                let v = &self.problem.vars()[j];
                (v.lower, v.upper)
            })
    }

    fn finish(
        &self,
        status: MilpStatus,
        values: Option<Vec<f64>>,
        bound: f64,
        nodes: usize,
        start: Instant,
    ) -> MilpSolution {
        MilpSolution {
            status,
            values: values.unwrap_or_default(),
            objective: f64::NAN,
            nodes,
            best_bound: bound,
            elapsed: start.elapsed(),
            root_basis: None,
        }
    }
}

/// Replaces or inserts a bound override for variable `j`.
fn set_override(bounds: &mut Vec<(usize, f64, f64)>, j: usize, lo: f64, up: f64) {
    if let Some(slot) = bounds.iter_mut().find(|(v, _, _)| *v == j) {
        slot.1 = lo;
        slot.2 = up;
    } else {
        bounds.push((j, lo, up));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem, VarKind};

    #[test]
    fn knapsack_small() {
        // max 60a + 100b + 120c s.t. 10a + 20b + 30c <= 50 -> 220 (b + c).
        let mut p = Problem::maximize();
        let a = p.add_binary(60.0, "a");
        let b = p.add_binary(100.0, "b");
        let c = p.add_binary(120.0, "c");
        p.add_constraint(vec![(a, 10.0), (b, 20.0), (c, 30.0)], Cmp::Le, 50.0);
        let s = Milp::new(&p).solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert_eq!(s.objective.round() as i64, 220);
        assert_eq!(s.value(a).round() as i64, 0);
        assert_eq!(s.value(b).round() as i64, 1);
        assert_eq!(s.value(c).round() as i64, 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integer -> 2 (LP relaxation 2.5).
        let mut p = Problem::maximize();
        let x = p.add_var(VarKind::Integer, 0.0, 10.0, 1.0, "x");
        let y = p.add_var(VarKind::Integer, 0.0, 10.0, 1.0, "y");
        p.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Le, 5.0);
        let s = Milp::new(&p).solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert_eq!(s.objective.round() as i64, 2);
    }

    #[test]
    fn infeasible_milp() {
        let mut p = Problem::minimize();
        let x = p.add_binary(1.0, "x");
        let y = p.add_binary(1.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
        let s = Milp::new(&p).solve().unwrap();
        assert_eq!(s.status, MilpStatus::Infeasible);
    }

    #[test]
    fn integer_infeasible_but_lp_feasible() {
        // 2x = 1 has LP solution x = 0.5 but no integer solution.
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Integer, 0.0, 10.0, 1.0, "x");
        p.add_constraint(vec![(x, 2.0)], Cmp::Eq, 1.0);
        let s = Milp::new(&p).solve().unwrap();
        assert_eq!(s.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // max 3x + 2y, x integer <= 4.5 constraint-wise, y continuous.
        // x + y <= 6, x <= 4.2 -> x = 4, y = 2 -> 16.
        let mut p = Problem::maximize();
        let x = p.add_var(VarKind::Integer, 0.0, 100.0, 3.0, "x");
        let y = p.add_nonneg(2.0, "y");
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 6.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.2);
        let s = Milp::new(&p).solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - 16.0).abs() < 1e-5);
        assert_eq!(s.value(x).round() as i64, 4);
    }

    #[test]
    fn assignment_problem_exact() {
        // 3x3 assignment, costs chosen so optimum is the anti-diagonal.
        let cost = [[9.0, 9.0, 1.0], [9.0, 1.0, 9.0], [1.0, 9.0, 9.0]];
        let mut p = Problem::minimize();
        let mut v = [[None; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                v[i][j] = Some(p.add_binary(cost[i][j], format!("x{i}{j}")));
            }
        }
        // `i` addresses both a row and a column of `v`.
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            p.add_constraint((0..3).map(|j| (v[i][j].unwrap(), 1.0)), Cmp::Eq, 1.0);
            p.add_constraint((0..3).map(|j| (v[j][i].unwrap(), 1.0)), Cmp::Eq, 1.0);
        }
        let s = Milp::new(&p).solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert_eq!(s.objective.round() as i64, 3);
    }

    #[test]
    fn equality_partition() {
        // Partition {3, 5, 8} into a subset summing exactly to 8: feasible.
        let mut p = Problem::maximize();
        let a = p.add_binary(1.0, "a3");
        let b = p.add_binary(1.0, "b5");
        let c = p.add_binary(1.0, "c8");
        p.add_constraint(vec![(a, 3.0), (b, 5.0), (c, 8.0)], Cmp::Eq, 8.0);
        let s = Milp::new(&p).solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        // Best is {3,5} with two items selected.
        assert_eq!(s.objective.round() as i64, 2);
    }

    #[test]
    fn node_limit_reports_feasible_or_none() {
        let mut p = Problem::maximize();
        let vars: Vec<_> = (0..12)
            .map(|i| p.add_binary(1.0 + i as f64 * 0.1, format!("v{i}")))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(terms, Cmp::Le, 6.0);
        let s = Milp::new(&p).node_limit(2).solve().unwrap();
        assert!(matches!(
            s.status,
            MilpStatus::Feasible | MilpStatus::NoSolutionFound | MilpStatus::Optimal
        ));
    }

    #[test]
    fn maximization_sign_handling() {
        // min -x is the same as max x; check both give consistent answers.
        let mut pmin = Problem::minimize();
        let x1 = pmin.add_var(VarKind::Integer, 0.0, 7.0, -1.0, "x");
        let smin = Milp::new(&pmin).solve().unwrap();
        let mut pmax = Problem::maximize();
        let x2 = pmax.add_var(VarKind::Integer, 0.0, 7.0, 1.0, "x");
        let smax = Milp::new(&pmax).solve().unwrap();
        assert_eq!(smin.value(x1).round() as i64, 7);
        assert_eq!(smax.value(x2).round() as i64, 7);
        assert!((smin.objective + smax.objective).abs() < 1e-9);
    }

    #[test]
    fn big_m_indicator_pattern() {
        // The exact pattern the scheduler uses: z = 1 only if x <= 3.
        // max z + 0.01x s.t. x + 10z <= 13, x >= 5: z = 1 forces x <= 3,
        // which contradicts x >= 5, so the optimum is z = 0, x = 10.
        let mut p = Problem::maximize();
        let x = p.add_var(VarKind::Continuous, 0.0, 10.0, 0.01, "x");
        let z = p.add_binary(1.0, "z");
        p.add_constraint(vec![(x, 1.0), (z, 10.0)], Cmp::Le, 13.0);
        p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 5.0);
        let s = Milp::new(&p).solve().unwrap();
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - 0.1).abs() < 1e-6, "got {}", s.objective);
        assert_eq!(s.value(z).round() as i64, 0);
        assert!((s.value(x) - 10.0).abs() < 1e-6);
    }
}
