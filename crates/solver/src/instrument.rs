//! Optional instrumentation hook for the branch-and-bound search.
//!
//! The solver crate stays dependency-free: rather than linking a metrics
//! library, [`Milp`](crate::Milp) accepts an optional
//! [`SolveInstrumentation`] implementation and reports discrete
//! [`SolveEvent`]s through it. Callers that want observability (Medea's
//! LRA scheduler bridges these events into `medea-obs` counters) provide
//! an impl; everyone else pays nothing.

/// A discrete event inside one MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveEvent {
    /// A simplex run finished, performing this many pivots.
    SimplexPivots(u64),
    /// One branch-and-bound node was expanded (its LP was solved).
    NodeExplored,
    /// A node was discarded without branching (infeasible LP, bound
    /// dominated by the incumbent, or iteration-limited LP).
    NodePruned,
    /// A new incumbent strictly improved (or established) the best
    /// integral solution.
    IncumbentImproved,
    /// The wall-clock deadline stopped the search.
    DeadlineHit,
    /// The node limit stopped the search.
    NodeLimitHit,
    /// A simplex run finished, having (re)factorized the basis this many
    /// times (the eta file was rebuilt from scratch).
    Refactorizations(u64),
    /// A node LP was solved starting from an inherited basis snapshot
    /// instead of a cold two-phase start.
    WarmStartUsed,
}

/// Receiver for [`SolveEvent`]s; implementations must be cheap — the
/// solver calls [`SolveInstrumentation::record`] from its hot loop.
pub trait SolveInstrumentation {
    /// Records one event.
    fn record(&self, event: SolveEvent);
}
