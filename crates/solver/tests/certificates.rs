//! Certificate tests: every answer the solver returns is re-verified
//! against an independently checkable optimality certificate.
//!
//! For LPs, the certificate is the dual vector reported in
//! [`LpSolution::duals`] (minimization form): primal feasibility, dual
//! sign conditions per row, and a zero duality gap between the primal
//! objective and the bounded-variable dual objective
//! `y·b + Σ_{d_j>0} d_j·l_j + Σ_{d_j<0} d_j·u_j` with reduced costs
//! `d_j = c_j − y·A_j`.
//!
//! For MILPs, the certificate is the incumbent itself (integral and
//! primal-feasible) plus the reported best bound bracketing it.

use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};
use medea_solver::{
    Cmp, LpSolution, LpStatus, Milp, MilpStatus, Problem, Sense, Simplex, FEAS_TOL, INT_TOL,
};

const TOL: f64 = 1e-6;

/// Verifies the full LP optimality certificate of `sol` against `p`.
fn assert_lp_certificate(p: &Problem, sol: &LpSolution, label: &str) {
    assert_eq!(sol.status, LpStatus::Optimal, "{label}: not optimal");
    assert_eq!(sol.duals.len(), p.num_constraints(), "{label}: dual size");

    // 1. Primal feasibility of the *relaxation*: rows and variable bounds
    //    only. `Problem::is_feasible` also enforces integrality, which an
    //    LP relaxation of a MILP legitimately violates.
    for (j, v) in p.vars().iter().enumerate() {
        let x = sol.values[j];
        assert!(
            x >= v.lower - TOL && x <= v.upper + TOL,
            "{label}: var {j} = {x} out of [{}, {}]",
            v.lower,
            v.upper
        );
    }
    for (i, c) in p.constraints().iter().enumerate() {
        let lhs: f64 = c
            .terms
            .iter()
            .map(|&(v, a)| a * sol.values[v.index()])
            .sum();
        let ok = match c.cmp {
            Cmp::Le => lhs <= c.rhs + TOL,
            Cmp::Ge => lhs >= c.rhs - TOL,
            Cmp::Eq => (lhs - c.rhs).abs() <= TOL,
        };
        assert!(ok, "{label}: row {i} violated (lhs {lhs}, rhs {})", c.rhs);
    }

    // 2. Dual sign conditions (min form): `Le` rows price <= 0, `Ge`
    //    rows >= 0, `Eq` rows are free.
    for (i, c) in p.constraints().iter().enumerate() {
        let y = sol.duals[i];
        match c.cmp {
            Cmp::Le => assert!(y <= TOL, "{label}: row {i} (<=) has dual {y} > 0"),
            Cmp::Ge => assert!(y >= -TOL, "{label}: row {i} (>=) has dual {y} < 0"),
            Cmp::Eq => {}
        }
    }

    // 3. Zero duality gap. Reduced costs use min-form structural costs.
    let min_obj = match p.sense() {
        Sense::Minimize => sol.objective,
        Sense::Maximize => -sol.objective,
    };
    let mut dual_obj: f64 = p
        .constraints()
        .iter()
        .zip(&sol.duals)
        .map(|(c, y)| y * c.rhs)
        .sum();
    for (j, v) in p.vars().iter().enumerate() {
        let c_min = match p.sense() {
            Sense::Minimize => v.cost,
            Sense::Maximize => -v.cost,
        };
        let mut d = c_min;
        for (i, c) in p.constraints().iter().enumerate() {
            for &(var, a) in &c.terms {
                if var.index() == j {
                    d -= sol.duals[i] * a;
                }
            }
        }
        if d > TOL {
            dual_obj += d * v.lower;
        } else if d < -TOL {
            assert!(
                v.upper.is_finite(),
                "{label}: negative reduced cost {d} on var {j} with infinite upper bound"
            );
            dual_obj += d * v.upper;
        }
    }
    let scale = 1.0 + min_obj.abs();
    assert!(
        (dual_obj - min_obj).abs() <= 1e-5 * scale,
        "{label}: duality gap {dual_obj} vs {min_obj}"
    );
}

/// A small bounded-feasible random LP: continuous variables in `[0, u]`,
/// mixed `<=` / `>=` / `==` rows built around a known interior point so
/// the instance is always feasible.
fn random_lp(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(2..7usize);
    let m = rng.random_range(1..6usize);
    let maximize = rng.random_bool(0.5);
    let mut p = if maximize {
        Problem::maximize()
    } else {
        Problem::minimize()
    };
    let vars: Vec<_> = (0..n)
        .map(|j| {
            let u = rng.random_range(1..6usize) as f64;
            let c = rng.random_range(-4i64..5) as f64;
            p.add_var(
                medea_solver::VarKind::Continuous,
                0.0,
                u,
                c,
                format!("x{j}"),
            )
        })
        .collect();
    // Interior anchor: x_j = u_j / 2.
    let anchor: Vec<f64> = vars.iter().map(|&v| p.var(v).upper / 2.0).collect();
    for _ in 0..m {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .filter_map(|(j, &v)| {
                let a = rng.random_range(-3i64..4) as f64;
                (a != 0.0).then_some((v, a, j))
            })
            .collect();
        if terms.is_empty() {
            continue;
        }
        let activity: f64 = terms.iter().map(|&(_, a, j)| a * anchor[j]).sum();
        let row: Vec<_> = terms.iter().map(|&(v, a, _)| (v, a)).collect();
        match rng.random_range(0..3usize) {
            0 => p.add_constraint(row, Cmp::Le, activity + rng.random_range(0..3usize) as f64),
            1 => p.add_constraint(row, Cmp::Ge, activity - rng.random_range(0..3usize) as f64),
            _ => p.add_constraint(row, Cmp::Eq, activity),
        };
    }
    p
}

#[test]
fn lp_duals_certify_fixed_instances() {
    // min x s.t. x >= 2, x in [0, 10]: y = 1, dual objective 2.
    let mut p = Problem::minimize();
    let x = p.add_var(medea_solver::VarKind::Continuous, 0.0, 10.0, 1.0, "x");
    p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
    assert_lp_certificate(&p, &Simplex::new(&p).solve(), "ge-floor");

    // max 3a + 2b s.t. a + b <= 4, a <= 3, b <= 3.
    let mut p = Problem::maximize();
    let a = p.add_var(medea_solver::VarKind::Continuous, 0.0, 3.0, 3.0, "a");
    let b = p.add_var(medea_solver::VarKind::Continuous, 0.0, 3.0, 2.0, "b");
    p.add_constraint(vec![(a, 1.0), (b, 1.0)], Cmp::Le, 4.0);
    let sol = Simplex::new(&p).solve();
    assert!((sol.objective - 11.0).abs() < 1e-9);
    assert_lp_certificate(&p, &sol, "knapsack-lp");

    // Degenerate equality system.
    let mut p = Problem::minimize();
    let a = p.add_nonneg(1.0, "a");
    let b = p.add_nonneg(2.0, "b");
    p.add_constraint(vec![(a, 1.0), (b, 1.0)], Cmp::Eq, 3.0);
    p.add_constraint(vec![(a, 2.0), (b, 2.0)], Cmp::Le, 6.0);
    assert_lp_certificate(&p, &Simplex::new(&p).solve(), "degenerate-eq");
}

#[test]
fn lp_duals_certify_random_instances() {
    let mut optimal = 0;
    for seed in 0..60u64 {
        let p = random_lp(seed);
        let sol = Simplex::new(&p).solve();
        // Construction guarantees feasibility; boundedness comes from the
        // finite variable boxes. Every solve must therefore be optimal.
        assert_eq!(
            sol.status,
            LpStatus::Optimal,
            "seed {seed}: bounded-feasible LP must solve"
        );
        assert_lp_certificate(&p, &sol, &format!("random-lp-{seed}"));
        optimal += 1;
    }
    assert_eq!(optimal, 60);
}

/// A small random MILP with binaries and bounded integers, feasible at 0.
fn random_milp(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
    let n = rng.random_range(2..6usize);
    let maximize = rng.random_bool(0.5);
    let mut p = if maximize {
        Problem::maximize()
    } else {
        Problem::minimize()
    };
    let vars: Vec<_> = (0..n)
        .map(|j| {
            let c = rng.random_range(-4i64..5) as f64;
            if rng.random_bool(0.5) {
                p.add_binary(c, format!("x{j}"))
            } else {
                p.add_var(
                    medea_solver::VarKind::Integer,
                    0.0,
                    rng.random_range(1..4usize) as f64,
                    c,
                    format!("x{j}"),
                )
            }
        })
        .collect();
    for _ in 0..rng.random_range(1..5usize) {
        // Nonnegative coefficients with a nonnegative rhs: x = 0 stays
        // feasible, so every instance has an incumbent.
        let row: Vec<_> = vars
            .iter()
            .filter_map(|&v| {
                let a = rng.random_range(0..3usize) as f64;
                (a != 0.0).then_some((v, a))
            })
            .collect();
        if row.is_empty() {
            continue;
        }
        let rhs = rng.random_range(1..6usize) as f64;
        p.add_constraint(row, Cmp::Le, rhs);
    }
    p
}

#[test]
fn milp_incumbent_is_integral_feasible_and_bracketed() {
    for seed in 0..40u64 {
        let p = random_milp(seed);
        let sol = Milp::new(&p).solve().expect("valid model");
        assert_eq!(
            sol.status,
            MilpStatus::Optimal,
            "seed {seed}: tiny MILP must prove optimality"
        );
        // Integrality of every integral variable.
        for (j, v) in p.vars().iter().enumerate() {
            if v.is_integral() {
                let x = sol.values[j];
                assert!(
                    (x - x.round()).abs() <= INT_TOL,
                    "seed {seed}: var {j} = {x} not integral"
                );
            }
        }
        // Primal feasibility of the incumbent.
        assert!(
            p.is_feasible(&sol.values, FEAS_TOL * 10.0),
            "seed {seed}: incumbent infeasible"
        );
        assert!(
            (p.objective_value(&sol.values) - sol.objective).abs() <= 1e-6,
            "seed {seed}: reported objective mismatch"
        );
        // The bound must bracket the incumbent from the optimization side.
        match p.sense() {
            Sense::Maximize => assert!(
                sol.best_bound >= sol.objective - 1e-6,
                "seed {seed}: bound {} below incumbent {}",
                sol.best_bound,
                sol.objective
            ),
            Sense::Minimize => assert!(
                sol.best_bound <= sol.objective + 1e-6,
                "seed {seed}: bound {} above incumbent {}",
                sol.best_bound,
                sol.objective
            ),
        }
    }
}

#[test]
fn milp_root_lp_bound_dominates_integer_optimum() {
    // The LP relaxation's certified optimum must weakly dominate the MILP
    // optimum (relaxation bound), tying the two certificates together.
    for seed in 0..20u64 {
        let p = random_milp(seed);
        let lp = Simplex::new(&p).solve();
        assert_lp_certificate(&p, &lp, &format!("milp-root-{seed}"));
        let milp = Milp::new(&p).solve().expect("valid model");
        assert_eq!(milp.status, MilpStatus::Optimal);
        match p.sense() {
            Sense::Maximize => assert!(lp.objective >= milp.objective - 1e-6),
            Sense::Minimize => assert!(lp.objective <= milp.objective + 1e-6),
        }
    }
}
