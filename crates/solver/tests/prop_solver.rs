//! Randomized tests for the MILP solver.
//!
//! Random small binary programs are solved both by branch and bound and by
//! exhaustive enumeration; the solver must agree with brute force on
//! feasibility and on the optimal objective value. Random LPs are checked
//! for primal feasibility and weak-duality-style sanity (the reported
//! objective is attained by the reported point).
//!
//! Programs are generated with the workspace's deterministic PRNG
//! (`medea-rand`), so every run solves the same instances.

use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};
use medea_solver::{Cmp, LpStatus, Milp, MilpStatus, Problem, Simplex};

/// Description of a random binary program.
#[derive(Debug, Clone)]
struct BinaryProgram {
    maximize: bool,
    costs: Vec<f64>,
    /// Rows as (coefficients, cmp index 0/1/2, rhs).
    rows: Vec<(Vec<i8>, u8, f64)>,
}

fn binary_program(rng: &mut StdRng, max_vars: usize, max_rows: usize) -> BinaryProgram {
    let nv = rng.random_range(1..(max_vars + 1));
    let nr = rng.random_range(0..(max_rows + 1));
    BinaryProgram {
        maximize: rng.random_bool(0.5),
        costs: (0..nv)
            .map(|_| rng.random_range(-10..11i64) as f64)
            .collect(),
        rows: (0..nr)
            .map(|_| {
                let coeffs: Vec<i8> = (0..nv).map(|_| rng.random_range(-3..4i64) as i8).collect();
                let cmp = rng.random_range(0..3u32) as u8;
                let rhs = rng.random_range(-6..13i64) as f64;
                (coeffs, cmp, rhs)
            })
            .collect(),
    }
}

fn build(bp: &BinaryProgram) -> Problem {
    let mut p = if bp.maximize {
        Problem::maximize()
    } else {
        Problem::minimize()
    };
    let vars: Vec<_> = bp
        .costs
        .iter()
        .enumerate()
        .map(|(i, &c)| p.add_binary(c, format!("x{i}")))
        .collect();
    for (coeffs, cmp, rhs) in &bp.rows {
        let cmp = match cmp {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        let terms: Vec<_> = coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| (vars[i], c as f64))
            .collect();
        p.add_constraint(terms, cmp, *rhs);
    }
    p
}

/// Exhaustively solves a binary program; returns the best objective if any
/// assignment is feasible.
fn brute_force(bp: &BinaryProgram) -> Option<f64> {
    let n = bp.costs.len();
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
        let mut feasible = true;
        for (coeffs, cmp, rhs) in &bp.rows {
            let lhs: f64 = coeffs.iter().zip(&x).map(|(&c, &xi)| c as f64 * xi).sum();
            let ok = match cmp {
                0 => lhs <= rhs + 1e-9,
                1 => lhs >= rhs - 1e-9,
                _ => (lhs - rhs).abs() <= 1e-9,
            };
            if !ok {
                feasible = false;
                break;
            }
        }
        if !feasible {
            continue;
        }
        let obj: f64 = bp.costs.iter().zip(&x).map(|(&c, &xi)| c * xi).sum();
        best = Some(match best {
            None => obj,
            Some(b) => {
                if bp.maximize {
                    b.max(obj)
                } else {
                    b.min(obj)
                }
            }
        });
    }
    best
}

/// Branch and bound agrees with brute force on random binary programs.
#[test]
fn milp_matches_brute_force() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xA1B0 ^ case);
        let bp = binary_program(&mut rng, 6, 5);
        let p = build(&bp);
        let sol = Milp::new(&p).solve().unwrap();
        match brute_force(&bp) {
            None => assert_eq!(sol.status, MilpStatus::Infeasible, "case {case}: {bp:?}"),
            Some(best) => {
                assert_eq!(sol.status, MilpStatus::Optimal, "case {case}: {bp:?}");
                assert!(
                    (sol.objective - best).abs() < 1e-6,
                    "case {case}: solver found {}, brute force {best}",
                    sol.objective
                );
                assert!(p.is_feasible(&sol.values, 1e-6));
            }
        }
    }
}

/// LP relaxations return feasible points that attain the reported
/// objective, and the relaxation bound dominates the integer optimum.
#[test]
fn lp_relaxation_bounds_integer_optimum() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x1B ^ case);
        let bp = binary_program(&mut rng, 6, 5);
        let p = build(&bp);
        let lp = Simplex::new(&p).solve();
        if lp.status == LpStatus::Optimal {
            // The reported point must be feasible for the relaxation
            // (box + rows, ignoring integrality) and attain the objective.
            for (v, &x) in p.vars().iter().zip(&lp.values) {
                assert!(x >= v.lower - 1e-6 && x <= v.upper + 1e-6, "case {case}");
            }
            let recomputed = p.objective_value(&lp.values);
            assert!((recomputed - lp.objective).abs() < 1e-6, "case {case}");
            if let Some(best) = brute_force(&bp) {
                let (relax, int) = (lp.objective, best);
                if bp.maximize {
                    assert!(
                        relax >= int - 1e-6,
                        "case {case}: relaxation {relax} below integer optimum {int}"
                    );
                } else {
                    assert!(
                        relax <= int + 1e-6,
                        "case {case}: relaxation {relax} above integer optimum {int}"
                    );
                }
            }
        } else if lp.status == LpStatus::Infeasible {
            // If the relaxation is infeasible the MILP must be too.
            assert!(brute_force(&bp).is_none(), "case {case}: {bp:?}");
        }
    }
}

/// Fixing every binary via bound overrides yields exactly that point.
#[test]
fn bound_fixing_pins_solution() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xF1 ^ case);
        let bp = binary_program(&mut rng, 5, 3);
        let mask = rng.random_range(0..32u32);
        let p = build(&bp);
        let n = p.num_vars();
        let overrides: Vec<(usize, f64, f64)> = (0..n)
            .map(|i| {
                let v = ((mask >> i) & 1) as f64;
                (i, v, v)
            })
            .collect();
        let lp = Simplex::new(&p).solve_with_bounds(Some(&overrides));
        if lp.status == LpStatus::Optimal {
            for (i, &(_, lo, _)) in overrides.iter().enumerate() {
                assert!((lp.values[i] - lo).abs() < 1e-6, "case {case}");
            }
        }
    }
}

#[test]
fn moderately_sized_set_cover_is_exact() {
    // Set cover over 12 elements with 8 sets; optimum checked by brute
    // force over the 256 subsets.
    let sets: [&[usize]; 8] = [
        &[0, 1, 2],
        &[2, 3, 4, 5],
        &[5, 6],
        &[6, 7, 8],
        &[8, 9, 10, 11],
        &[0, 4, 8],
        &[1, 5, 9],
        &[3, 7, 11],
    ];
    let weights = [3.0, 4.0, 2.0, 3.0, 4.0, 3.0, 3.0, 3.0];

    let mut p = Problem::minimize();
    let vars: Vec<_> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| p.add_binary(w, format!("s{i}")))
        .collect();
    for e in 0..12 {
        let terms: Vec<_> = sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(&e))
            .map(|(i, _)| (vars[i], 1.0))
            .collect();
        p.add_constraint(terms, Cmp::Ge, 1.0);
    }
    let sol = Milp::new(&p).solve().unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);

    let mut best = f64::INFINITY;
    for mask in 0u32..256 {
        let mut covered = [false; 12];
        let mut w = 0.0;
        for (i, s) in sets.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                w += weights[i];
                for &e in *s {
                    covered[e] = true;
                }
            }
        }
        if covered.iter().all(|&c| c) {
            best = best.min(w);
        }
    }
    assert!(
        (sol.objective - best).abs() < 1e-9,
        "milp {} vs brute {best}",
        sol.objective
    );
}
