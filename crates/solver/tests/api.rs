//! Black-box tests of the solver's public API: anytime behaviour, MIP
//! starts, root bounds, gaps, and exactness on structured instances.

use std::time::Duration;

use medea_solver::{presolve, Cmp, Milp, MilpStatus, Problem, VarKind};

/// A 0-1 knapsack with a known dynamic-programming optimum.
fn knapsack(values: &[i64], weights: &[i64], cap: i64) -> (Problem, i64) {
    let mut p = Problem::maximize();
    let vars: Vec<_> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| p.add_binary(v as f64, format!("x{i}")))
        .collect();
    p.add_constraint(
        vars.iter().zip(weights).map(|(&v, &w)| (v, w as f64)),
        Cmp::Le,
        cap as f64,
    );
    // DP for the exact optimum.
    let mut dp = vec![0i64; (cap + 1) as usize];
    for (i, &w) in weights.iter().enumerate() {
        for c in (w..=cap).rev() {
            dp[c as usize] = dp[c as usize].max(dp[(c - w) as usize] + values[i]);
        }
    }
    (p, dp[cap as usize])
}

#[test]
fn knapsack_matches_dynamic_programming() {
    let values = [41, 50, 49, 59, 45, 47, 42, 44, 52, 48, 51, 46];
    let weights = [7, 8, 11, 13, 9, 12, 6, 10, 14, 8, 9, 7];
    let (p, best) = knapsack(&values, &weights, 40);
    let sol = Milp::new(&p).solve().unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_eq!(sol.objective.round() as i64, best);
}

#[test]
fn mip_start_makes_tight_deadlines_anytime() {
    // Large-ish knapsack with an absurdly tight deadline: with a feasible
    // incumbent provided, the solver must return at least that quality
    // instead of failing.
    let values: Vec<i64> = (0..24).map(|i| 30 + (i * 7) % 23).collect();
    let weights: Vec<i64> = (0..24).map(|i| 5 + (i * 5) % 11).collect();
    let (p, _) = knapsack(&values, &weights, 60);

    // Greedy incumbent: take items while they fit.
    let mut point = vec![0.0; p.num_vars()];
    let mut used = 0;
    for i in 0..24 {
        if used + weights[i] <= 60 {
            used += weights[i];
            point[i] = 1.0;
        }
    }
    let greedy_value: f64 = values.iter().zip(&point).map(|(&v, &x)| v as f64 * x).sum();

    let sol = Milp::new(&p)
        .with_incumbent(point)
        .time_limit(Duration::from_millis(50))
        .solve()
        .unwrap();
    assert!(sol.has_solution(), "anytime: must return something");
    assert!(
        sol.objective >= greedy_value - 1e-9,
        "must be at least the provided incumbent ({} < {greedy_value})",
        sol.objective
    );
}

#[test]
fn infeasible_incumbent_is_ignored() {
    let mut p = Problem::maximize();
    let x = p.add_binary(1.0, "x");
    let y = p.add_binary(1.0, "y");
    p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
    // The "incumbent" violates the row; the solver must not adopt it.
    let sol = Milp::new(&p)
        .with_incumbent(vec![1.0, 1.0])
        .solve()
        .unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_eq!(sol.objective.round() as i64, 1);
}

#[test]
fn root_bounds_restrict_the_search() {
    let mut p = Problem::maximize();
    let x = p.add_var(VarKind::Integer, 0.0, 10.0, 1.0, "x");
    let sol = Milp::new(&p)
        .with_root_bounds(vec![(x.index(), 2.0, 4.0)])
        .solve()
        .unwrap();
    assert_eq!(sol.objective.round() as i64, 4);
}

#[test]
fn gap_terminates_early_but_within_tolerance() {
    let values: Vec<i64> = (0..20).map(|i| 40 + (i * 13) % 31).collect();
    let weights: Vec<i64> = (0..20).map(|i| 6 + (i * 7) % 13).collect();
    let (p, best) = knapsack(&values, &weights, 50);
    let sol = Milp::new(&p).gap(0.05).solve().unwrap();
    assert!(sol.has_solution());
    assert!(
        sol.objective >= best as f64 * 0.94,
        "5% gap: {} vs optimum {best}",
        sol.objective
    );
}

#[test]
fn presolve_then_solve_agrees_with_direct_solve() {
    let values: Vec<i64> = (0..14).map(|i| 20 + (i * 11) % 17).collect();
    let weights: Vec<i64> = (0..14).map(|i| 4 + (i * 3) % 9).collect();
    let (p, best) = knapsack(&values, &weights, 30);
    let mut reduced = p.clone();
    let stats = presolve(&mut reduced);
    assert!(!stats.proven_infeasible);
    let sol = Milp::new(&reduced).solve().unwrap();
    assert_eq!(sol.objective.round() as i64, best);
}

#[test]
fn node_limit_is_respected() {
    let values: Vec<i64> = (0..22).map(|i| 10 + (i * 17) % 29).collect();
    let weights: Vec<i64> = (0..22).map(|i| 3 + (i * 13) % 19).collect();
    let (p, _) = knapsack(&values, &weights, 60);
    let sol = Milp::new(&p).node_limit(5).solve().unwrap();
    // Severely limited: a status is still produced and nodes stay small.
    assert!(
        sol.nodes <= 200,
        "dive plus a handful of nodes, got {}",
        sol.nodes
    );
}

#[test]
fn equality_constrained_scheduling_shape() {
    // All-or-nothing placement shape: 3 containers on 3 nodes, one each,
    // with an S indicator — the scheduler's Eq. 2/4 structure.
    let mut p = Problem::maximize();
    let x: Vec<Vec<_>> = (0..3)
        .map(|i| {
            (0..3)
                .map(|n| p.add_binary(0.0, format!("x{i}{n}")))
                .collect()
        })
        .collect();
    let s = p.add_binary(1.0, "s");
    let mut all = Vec::new();
    for row in &x {
        p.add_constraint(row.iter().map(|&v| (v, 1.0)), Cmp::Le, 1.0);
        all.extend(row.iter().map(|&v| (v, 1.0)));
    }
    all.push((s, -3.0));
    p.add_constraint(all, Cmp::Eq, 0.0);
    // `n` walks the transposed node dimension of `x`.
    #[allow(clippy::needless_range_loop)]
    for n in 0..3 {
        p.add_constraint((0..3).map(|i| (x[i][n], 1.0)), Cmp::Le, 1.0);
    }
    let sol = Milp::new(&p).solve().unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_eq!(sol.value(s).round() as i64, 1);
}
