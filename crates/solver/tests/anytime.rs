//! Regression tests for the solver's *anytime* contract (§5.2: a
//! scheduling interval bounds the time available for placement, so a
//! limit hit must degrade to the best incumbent, never to an error).
//!
//! Every instance is generated with the workspace's deterministic PRNG,
//! so each run solves the same problems.

use std::time::Duration;

use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};
use medea_solver::{Cmp, Milp, MilpStatus, Problem};

/// A random knapsack-family maximization: all-zeros is always feasible,
/// so a warm start is available for every instance.
fn knapsack(rng: &mut StdRng, vars: usize, rows: usize) -> Problem {
    let mut p = Problem::maximize();
    let xs: Vec<_> = (0..vars)
        .map(|i| p.add_binary(rng.random_range(1..20i64) as f64, format!("x{i}")))
        .collect();
    for _ in 0..rows {
        let coeffs: Vec<i64> = (0..vars).map(|_| rng.random_range(0..8i64)).collect();
        let budget: i64 = coeffs.iter().sum::<i64>() / 2 + 1;
        p.add_constraint(
            xs.iter().zip(&coeffs).map(|(&v, &c)| (v, c as f64)),
            Cmp::Le,
            budget as f64,
        );
    }
    p
}

#[test]
fn zero_time_limit_returns_feasible_with_warm_start() {
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xA11_71E ^ case);
        let p = knapsack(&mut rng, 14, 6);
        let zeros = vec![0.0; p.num_vars()];
        let sol = Milp::new(&p)
            .with_incumbent(zeros)
            .time_limit(Duration::ZERO)
            .solve()
            .expect("time limit must never surface as an error");
        assert!(
            sol.has_solution(),
            "case {case}: warm start must survive a zero deadline"
        );
        // All objective coefficients are positive, so all-zeros scores 0
        // and any improvement the solver reports must only raise it.
        assert!(sol.objective >= 0.0, "case {case}: objective regressed");
    }
}

#[test]
fn node_limit_returns_feasible_with_warm_start() {
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x0DE_517 ^ case);
        let p = knapsack(&mut rng, 16, 8);
        let zeros = vec![0.0; p.num_vars()];
        let sol = Milp::new(&p)
            .with_incumbent(zeros)
            .node_limit(1)
            .solve()
            .expect("node limit must never surface as an error");
        assert!(
            sol.has_solution(),
            "case {case}: warm start must survive a node limit of 1"
        );
        assert!(sol.objective >= 0.0, "case {case}: objective regressed");
    }
}

#[test]
fn limits_never_error_even_without_warm_start() {
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xC01D ^ case);
        let p = knapsack(&mut rng, 12, 5);
        let timed = Milp::new(&p).time_limit(Duration::ZERO).solve();
        assert!(timed.is_ok(), "case {case}: zero deadline errored");
        let limited = Milp::new(&p).node_limit(1).solve();
        assert!(limited.is_ok(), "case {case}: node limit errored");
        // The knapsack family is feasible (all-zeros), so a status of
        // Infeasible/Unbounded would be a wrong answer; a limit hit with
        // no incumbent must report NoSolutionFound instead.
        for sol in [timed.unwrap(), limited.unwrap()] {
            assert!(
                !matches!(sol.status, MilpStatus::Infeasible | MilpStatus::Unbounded),
                "case {case}: limit produced wrong status {:?}",
                sol.status
            );
        }
    }
}

#[test]
fn limited_solves_are_deterministic_per_seed() {
    for case in 0..8u64 {
        let solve_once = || {
            let mut rng = StdRng::seed_from_u64(0xD_E7E ^ case);
            let p = knapsack(&mut rng, 18, 8);
            let zeros = vec![0.0; p.num_vars()];
            Milp::new(&p)
                .with_incumbent(zeros)
                .node_limit(16)
                .solve()
                .expect("limited solve")
        };
        let a = solve_once();
        let b = solve_once();
        assert_eq!(a.status, b.status, "case {case}: status diverged");
        assert_eq!(a.objective, b.objective, "case {case}: objective diverged");
        assert_eq!(a.values, b.values, "case {case}: solution point diverged");
        assert_eq!(a.nodes, b.nodes, "case {case}: node count diverged");
    }
}

#[test]
fn incumbent_improves_monotonically_with_budget() {
    for case in 0..8u64 {
        let build = || {
            let mut rng = StdRng::seed_from_u64(0xB0D6E7 ^ case);
            knapsack(&mut rng, 18, 8)
        };
        let p_small = build();
        let small = Milp::new(&p_small)
            .with_incumbent(vec![0.0; p_small.num_vars()])
            .node_limit(2)
            .solve()
            .expect("small budget solve");
        let p_big = build();
        let big = Milp::new(&p_big)
            .with_incumbent(vec![0.0; p_big.num_vars()])
            .node_limit(10_000)
            .solve()
            .expect("big budget solve");
        assert!(
            big.objective >= small.objective - 1e-9,
            "case {case}: more budget must not worsen the incumbent \
             ({} < {})",
            big.objective,
            small.objective
        );
    }
}
