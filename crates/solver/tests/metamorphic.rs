//! Metamorphic solver tests: transformations of a problem with a known
//! effect on the optimum. Row/column permutation and positive row scaling
//! must leave the optimal objective unchanged; scaling a continuous
//! variable's column must too; adding a fixed variable with cost `K`
//! shifts the optimum by exactly `K`.

use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};
use medea_solver::{Cmp, LpStatus, Milp, MilpStatus, Problem, Simplex, VarId, VarKind};

const TOL: f64 = 1e-6;

/// One row: terms over var index, comparator, right-hand side.
type RawRow = (Vec<(usize, f64)>, Cmp, f64);

/// Raw description of a problem, easy to transform and rebuild.
#[derive(Clone)]
struct Raw {
    maximize: bool,
    // (lower, upper, cost, integral)
    vars: Vec<(f64, f64, f64, bool)>,
    rows: Vec<RawRow>,
}

impl Raw {
    fn build(&self) -> Problem {
        let mut p = if self.maximize {
            Problem::maximize()
        } else {
            Problem::minimize()
        };
        let ids: Vec<VarId> = self
            .vars
            .iter()
            .enumerate()
            .map(|(j, &(l, u, c, int))| {
                let kind = if int {
                    VarKind::Integer
                } else {
                    VarKind::Continuous
                };
                p.add_var(kind, l, u, c, format!("x{j}"))
            })
            .collect();
        for (terms, cmp, rhs) in &self.rows {
            p.add_constraint(
                terms.iter().map(|&(j, a)| (ids[j], a)).collect::<Vec<_>>(),
                *cmp,
                *rhs,
            );
        }
        p
    }

    fn milp_objective(&self) -> f64 {
        let sol = Milp::new(&self.build()).solve().expect("valid model");
        assert_eq!(sol.status, MilpStatus::Optimal, "base instance must solve");
        sol.objective
    }

    fn lp_objective(&self) -> f64 {
        let sol = Simplex::new(&self.build()).solve();
        assert_eq!(sol.status, LpStatus::Optimal, "base instance must solve");
        sol.objective
    }
}

/// A feasible-at-zero random instance (all-Le rows with nonnegative
/// coefficients and positive rhs), mixing integers and continuics.
fn random_raw(seed: u64, integral: bool) -> Raw {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let n = rng.random_range(3..7usize);
    let m = rng.random_range(2..6usize);
    let vars = (0..n)
        .map(|_| {
            let u = rng.random_range(1..5usize) as f64;
            let c = rng.random_range(-4i64..5) as f64;
            (0.0, u, c, integral && rng.random_bool(0.7))
        })
        .collect();
    let rows = (0..m)
        .filter_map(|_| {
            let terms: Vec<(usize, f64)> = (0..n)
                .filter_map(|j| {
                    let a = rng.random_range(0..4usize) as f64;
                    (a != 0.0).then_some((j, a))
                })
                .collect();
            (!terms.is_empty()).then(|| (terms, Cmp::Le, rng.random_range(1..8usize) as f64))
        })
        .collect();
    Raw {
        maximize: rng.random_bool(0.5),
        vars,
        rows,
    }
}

#[test]
fn row_permutation_preserves_optimum() {
    for seed in 0..15u64 {
        let base = random_raw(seed, true);
        let reference = base.milp_objective();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut permuted = base.clone();
        rng.shuffle(&mut permuted.rows);
        assert!(
            (permuted.milp_objective() - reference).abs() <= TOL,
            "seed {seed}: row order changed the optimum"
        );
    }
}

#[test]
fn column_permutation_preserves_optimum() {
    for seed in 0..15u64 {
        let base = random_raw(seed, true);
        let reference = base.milp_objective();
        let n = base.vars.len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let mut perm: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut perm);
        // new index of old var j is inv[j].
        let mut inv = vec![0usize; n];
        for (new_j, &old_j) in perm.iter().enumerate() {
            inv[old_j] = new_j;
        }
        let permuted = Raw {
            maximize: base.maximize,
            vars: perm.iter().map(|&old_j| base.vars[old_j]).collect(),
            rows: base
                .rows
                .iter()
                .map(|(terms, cmp, rhs)| {
                    (
                        terms.iter().map(|&(j, a)| (inv[j], a)).collect(),
                        *cmp,
                        *rhs,
                    )
                })
                .collect(),
        };
        assert!(
            (permuted.milp_objective() - reference).abs() <= TOL,
            "seed {seed}: column order changed the optimum"
        );
    }
}

#[test]
fn positive_row_scaling_preserves_optimum() {
    for seed in 0..15u64 {
        let base = random_raw(seed, true);
        let reference = base.milp_objective();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA1E);
        let mut scaled = base.clone();
        for (terms, _, rhs) in &mut scaled.rows {
            let s = rng.random_range(1..20usize) as f64 / 4.0;
            for (_, a) in terms.iter_mut() {
                *a *= s;
            }
            *rhs *= s;
        }
        assert!(
            (scaled.milp_objective() - reference).abs() <= TOL,
            "seed {seed}: positive row scaling changed the optimum"
        );
    }
}

#[test]
fn continuous_column_scaling_preserves_lp_optimum() {
    // Substituting x_j = s_j * x'_j (s_j > 0) rescales the column, the
    // cost, and the bounds; the optimal objective is invariant.
    for seed in 0..15u64 {
        let base = random_raw(seed, false);
        let reference = base.lp_objective();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let mut scaled = base.clone();
        let scales: Vec<f64> = scaled
            .vars
            .iter()
            .map(|_| rng.random_range(1..16usize) as f64 / 4.0)
            .collect();
        for (j, v) in scaled.vars.iter_mut().enumerate() {
            v.0 /= scales[j];
            v.1 /= scales[j];
            v.2 *= scales[j];
        }
        for (terms, _, _) in &mut scaled.rows {
            for (j, a) in terms.iter_mut() {
                *a *= scales[*j];
            }
        }
        assert!(
            (scaled.lp_objective() - reference).abs() <= 1e-5 * (1.0 + reference.abs()),
            "seed {seed}: column scaling changed the LP optimum"
        );
    }
}

#[test]
fn objective_shift_via_fixed_variable() {
    // The Problem has no constant objective term; a variable fixed to
    // [1, 1] with cost K is the canonical encoding and must shift the
    // optimum by exactly K.
    for seed in 0..15u64 {
        let base = random_raw(seed, true);
        let reference = base.milp_objective();
        let k = (seed as f64) * 1.75 - 10.0;
        let mut shifted = base.clone();
        shifted.vars.push((1.0, 1.0, k, false));
        assert!(
            (shifted.milp_objective() - (reference + k)).abs() <= TOL,
            "seed {seed}: fixed-variable shift by {k} not reflected"
        );
    }
}
