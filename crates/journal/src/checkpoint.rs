//! Checkpoint documents: a full serialization of cluster state at one
//! epoch, installed atomically so restore never sees a half-written
//! base image.
//!
//! Like log records, the document speaks primitives only. The cluster
//! layer serializes into this shape from a consistent snapshot and
//! rebuilds `ClusterState` (allocation maps, tag multisets, index, and
//! group γ caches) from it on restore.

use std::fmt::Write as _;

use crate::json::{write_escaped, JsonValue};
use crate::record::decode_string_arr;

/// One node's durable description.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointNode {
    /// Dense node id.
    pub node: u32,
    /// Hostname (restored verbatim).
    pub hostname: String,
    /// Capacity memory, MB.
    pub memory_mb: u64,
    /// Capacity vcores.
    pub vcores: u32,
    /// Static tags the node was constructed with.
    pub static_tags: Vec<String>,
    /// The node's **full** current tag multiset as `(tag, count)`
    /// pairs, sorted by tag. This is the truth the restorer reproduces;
    /// it is *not* derivable from `static_tags` + allocations because
    /// `remove_node_tag` may have consumed occurrences contributed by
    /// either.
    pub tags: Vec<(String, u32)>,
    /// Current availability.
    pub available: bool,
}

/// One registered node group.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointGroup {
    /// Group name (e.g. `rack`, `service-unit`).
    pub group: String,
    /// Node-id sets.
    pub sets: Vec<Vec<u32>>,
}

/// One live allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointAlloc {
    /// Container id (restore replays in ascending id order so per-node
    /// and per-app container lists reproduce their insertion order).
    pub container: u64,
    /// Owning application.
    pub app: u64,
    /// Host node.
    pub node: u32,
    /// Allocated memory, MB.
    pub memory_mb: u64,
    /// Allocated vcores.
    pub vcores: u32,
    /// Execution kind: long-running (true) or task (false).
    pub long_running: bool,
    /// Full tag list including the `appid:` auto-tag.
    pub tags: Vec<String>,
}

/// A complete checkpoint of cluster state at `epoch`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointDoc {
    /// Cluster mutation epoch at capture time.
    pub epoch: u64,
    /// Next container id to assign.
    pub next_container: u64,
    /// All nodes, ascending id.
    pub nodes: Vec<CheckpointNode>,
    /// All registered groups (including the implicit-on-construction
    /// `rack` partition), sorted by name.
    pub groups: Vec<CheckpointGroup>,
    /// All live allocations, ascending container id.
    pub allocs: Vec<CheckpointAlloc>,
}

impl CheckpointDoc {
    /// Encodes the document as a single-line JSON payload (unframed).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(256 + self.nodes.len() * 96);
        let _ = write!(
            out,
            "{{\"epoch\":{},\"next_container\":{},\"nodes\":[",
            self.epoch, self.next_container
        );
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"host\":", n.node);
            write_escaped(&mut out, &n.hostname);
            let _ = write!(
                out,
                ",\"mem\":{},\"vcores\":{},\"available\":{},\"static_tags\":[",
                n.memory_mb, n.vcores, n.available
            );
            for (j, t) in n.static_tags.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, t);
            }
            out.push_str("],\"tags\":[");
            for (j, (t, c)) in n.tags.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                write_escaped(&mut out, t);
                let _ = write!(out, ",{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("],\"groups\":[");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &g.group);
            out.push_str(",\"sets\":[");
            for (j, set) in g.sets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (k, n) in set.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{n}");
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("],\"allocs\":[");
        for (i, a) in self.allocs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"container\":{},\"app\":{},\"node\":{},\"mem\":{},\"vcores\":{},\"lr\":{},\"tags\":[",
                a.container, a.app, a.node, a.memory_mb, a.vcores, a.long_running
            );
            for (j, t) in a.tags.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, t);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Decodes a document from an unframed JSON payload.
    pub fn decode(payload: &str) -> Result<CheckpointDoc, String> {
        let doc = JsonValue::parse(payload)?;
        let mut nodes = Vec::new();
        for n in doc.req_arr("nodes")? {
            let mut tags = Vec::new();
            for pair in n.req_arr("tags")? {
                let pair = pair
                    .as_arr()
                    .ok_or_else(|| "non-array tag-count pair".to_string())?;
                let (t, c) = match pair {
                    [t, c] => (t, c),
                    _ => return Err("tag-count pair arity != 2".to_string()),
                };
                tags.push((
                    t.as_str()
                        .ok_or_else(|| "non-string tag".to_string())?
                        .to_string(),
                    c.as_u32().ok_or_else(|| "non-u32 tag count".to_string())?,
                ));
            }
            nodes.push(CheckpointNode {
                node: n.req_u32("id")?,
                hostname: n.req_str("host")?.to_string(),
                memory_mb: n.req_u64("mem")?,
                vcores: n.req_u32("vcores")?,
                static_tags: decode_string_arr(n.req_arr("static_tags")?)?,
                tags,
                available: n.req_bool("available")?,
            });
        }
        let mut groups = Vec::new();
        for g in doc.req_arr("groups")? {
            let sets = g
                .req_arr("sets")?
                .iter()
                .map(|s| {
                    s.as_arr()
                        .ok_or_else(|| "non-array group set".to_string())?
                        .iter()
                        .map(|n| n.as_u32().ok_or_else(|| "non-u32 node id".to_string()))
                        .collect()
                })
                .collect::<Result<Vec<Vec<u32>>, String>>()?;
            groups.push(CheckpointGroup {
                group: g.req_str("name")?.to_string(),
                sets,
            });
        }
        let mut allocs = Vec::new();
        for a in doc.req_arr("allocs")? {
            allocs.push(CheckpointAlloc {
                container: a.req_u64("container")?,
                app: a.req_u64("app")?,
                node: a.req_u32("node")?,
                memory_mb: a.req_u64("mem")?,
                vcores: a.req_u32("vcores")?,
                long_running: a.req_bool("lr")?,
                tags: decode_string_arr(a.req_arr("tags")?)?,
            });
        }
        Ok(CheckpointDoc {
            epoch: doc.req_u64("epoch")?,
            next_container: doc.req_u64("next_container")?,
            nodes,
            groups,
            allocs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_round_trips() {
        let doc = CheckpointDoc {
            epoch: 42,
            next_container: 7,
            nodes: vec![
                CheckpointNode {
                    node: 0,
                    hostname: "host-0000".into(),
                    memory_mb: 16384,
                    vcores: 16,
                    static_tags: vec!["ssd".into()],
                    tags: vec![("appid:1".into(), 2), ("ssd".into(), 1)],
                    available: true,
                },
                CheckpointNode {
                    node: 1,
                    hostname: "host-0001".into(),
                    memory_mb: 8192,
                    vcores: 8,
                    static_tags: vec![],
                    tags: vec![],
                    available: false,
                },
            ],
            groups: vec![CheckpointGroup {
                group: "rack".into(),
                sets: vec![vec![0], vec![1]],
            }],
            allocs: vec![CheckpointAlloc {
                container: 3,
                app: 1,
                node: 0,
                memory_mb: 1024,
                vcores: 1,
                long_running: true,
                tags: vec!["hbase".into(), "appid:1".into()],
            }],
        };
        let enc = doc.encode();
        let dec = CheckpointDoc::decode(&enc).unwrap();
        assert_eq!(dec, doc);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let doc = CheckpointDoc::default();
        assert_eq!(CheckpointDoc::decode(&doc.encode()).unwrap(), doc);
    }
}
