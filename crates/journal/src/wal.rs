//! The write-ahead log proper: frames records into storage, installs
//! checkpoints, and loads `(checkpoint, log tail)` for restore.

use std::fmt;

use crate::checkpoint::CheckpointDoc;
use crate::frame::{frame, unframe};
use crate::record::JournalRecord;
use crate::storage::JournalStorage;
use crate::JournalError;

/// Cumulative counters for one [`Wal`] (feeds the `journal.*` gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records successfully appended.
    pub records_appended: u64,
    /// Bytes appended (framed lines, excluding the newline).
    pub bytes_appended: u64,
    /// Checkpoints installed.
    pub checkpoints_installed: u64,
    /// Appends that failed at the storage layer and were dropped by
    /// [`Wal::append_best_effort`]. Non-zero means the journal is no
    /// longer a faithful mutation history.
    pub append_errors: u64,
}

/// An append-only write-ahead journal over pluggable storage.
pub struct Wal {
    storage: Box<dyn JournalStorage>,
    stats: JournalStats,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal").field("stats", &self.stats).finish()
    }
}

impl Wal {
    /// Wraps a storage sink.
    pub fn new(storage: impl JournalStorage + 'static) -> Wal {
        Wal {
            storage: Box::new(storage),
            stats: JournalStats::default(),
        }
    }

    /// Appends one record, framed and flushed.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let line = frame(&record.encode());
        self.storage.append_line(&line)?;
        self.stats.records_appended += 1;
        self.stats.bytes_appended += line.len() as u64;
        Ok(())
    }

    /// Appends one record, counting (instead of propagating) storage
    /// failures. This is the hook the cluster's mutation path uses:
    /// placement must not start panicking because a disk filled up, but
    /// the failure is recorded in [`JournalStats::append_errors`] so
    /// operators (and the invariant auditor) can see the journal went
    /// lossy.
    pub fn append_best_effort(&mut self, record: &JournalRecord) {
        if self.append(record).is_err() {
            self.stats.append_errors += 1;
        }
    }

    /// Installs a checkpoint: writes the document, then truncates the
    /// log. Records with `epoch <= doc.epoch` that survive in the log
    /// (crash between the two steps) are skipped by replay.
    pub fn install_checkpoint(&mut self, doc: &CheckpointDoc) -> Result<(), JournalError> {
        let body = frame(&doc.encode());
        self.storage.write_checkpoint(&body)?;
        self.storage.truncate_log()?;
        self.stats.checkpoints_installed += 1;
        Ok(())
    }

    /// Loads the installed checkpoint (if any) and the decoded log
    /// tail, in append order. Any corrupt or truncated line — including
    /// a torn final write — fails the whole load: a journal that cannot
    /// be read exactly is not replayed partially.
    #[allow(clippy::type_complexity)]
    pub fn load(&self) -> Result<(Option<CheckpointDoc>, Vec<JournalRecord>), JournalError> {
        let checkpoint = match self.storage.read_checkpoint()? {
            Some(body) => {
                let payload = unframe(&body, 0)?;
                Some(
                    CheckpointDoc::decode(payload).map_err(|reason| JournalError::Corrupt {
                        line: 0,
                        reason: format!("checkpoint: {reason}"),
                    })?,
                )
            }
            None => None,
        };
        let mut records = Vec::new();
        for (i, line) in self.storage.read_log()?.iter().enumerate() {
            let line_no = i + 1;
            let payload = unframe(line, line_no)?;
            let rec = JournalRecord::decode(payload).map_err(|reason| JournalError::Corrupt {
                line: line_no,
                reason,
            })?;
            records.push(rec);
        }
        Ok((checkpoint, records))
    }

    /// Cumulative journal counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::JournalOp;
    use crate::storage::MemoryStorage;

    fn rec(epoch: u64, container: u64) -> JournalRecord {
        JournalRecord {
            epoch,
            op: JournalOp::Release { container },
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new(storage.clone());
        wal.append(&rec(1, 10)).unwrap();
        wal.append(&rec(2, 11)).unwrap();
        let (ckpt, log) = wal.load().unwrap();
        assert!(ckpt.is_none());
        assert_eq!(log, vec![rec(1, 10), rec(2, 11)]);
        assert_eq!(wal.stats().records_appended, 2);
        assert!(wal.stats().bytes_appended > 0);
    }

    #[test]
    fn checkpoint_truncates_log() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new(storage.clone());
        wal.append(&rec(1, 10)).unwrap();
        let doc = CheckpointDoc {
            epoch: 1,
            ..CheckpointDoc::default()
        };
        wal.install_checkpoint(&doc).unwrap();
        wal.append(&rec(2, 11)).unwrap();
        let (ckpt, log) = wal.load().unwrap();
        assert_eq!(ckpt.unwrap().epoch, 1);
        assert_eq!(log, vec![rec(2, 11)]);
        assert_eq!(wal.stats().checkpoints_installed, 1);
    }

    #[test]
    fn corrupt_tail_fails_load() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new(storage.clone());
        wal.append(&rec(1, 10)).unwrap();
        wal.append(&rec(2, 11)).unwrap();
        // Truncate the final line mid-frame (torn write).
        let mut lines = storage.log_lines();
        let last = lines.last_mut().unwrap();
        last.truncate(last.len() / 2);
        storage.set_log_lines(lines);
        let err = wal.load().unwrap_err();
        assert!(
            matches!(err, JournalError::Corrupt { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn corrupt_checkpoint_fails_load() {
        let storage = MemoryStorage::new();
        let mut wal = Wal::new(storage.clone());
        wal.install_checkpoint(&CheckpointDoc::default()).unwrap();
        let mut body = storage.checkpoint_body().unwrap();
        body.replace_range(3..4, "X");
        storage.set_checkpoint_body(Some(body));
        assert!(wal.load().is_err());
    }

    #[test]
    fn best_effort_append_counts_failures() {
        struct FailingSink;
        impl JournalStorage for FailingSink {
            fn append_line(&mut self, _: &str) -> Result<(), JournalError> {
                Err(JournalError::Io("disk full".into()))
            }
            fn read_log(&self) -> Result<Vec<String>, JournalError> {
                Ok(Vec::new())
            }
            fn write_checkpoint(&mut self, _: &str) -> Result<(), JournalError> {
                Ok(())
            }
            fn read_checkpoint(&self) -> Result<Option<String>, JournalError> {
                Ok(None)
            }
            fn truncate_log(&mut self) -> Result<(), JournalError> {
                Ok(())
            }
        }
        let mut wal = Wal::new(FailingSink);
        wal.append_best_effort(&rec(1, 1));
        assert_eq!(wal.stats().append_errors, 1);
        assert_eq!(wal.stats().records_appended, 0);
    }

    #[test]
    fn file_storage_round_trips() {
        // Stay inside the workspace: scratch under target/, not /tmp.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("medea-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let storage = crate::storage::FileStorage::open(&dir).unwrap();
            let mut wal = Wal::new(storage);
            wal.install_checkpoint(&CheckpointDoc {
                epoch: 3,
                ..CheckpointDoc::default()
            })
            .unwrap();
            wal.append(&rec(4, 9)).unwrap();
        }
        {
            let storage = crate::storage::FileStorage::open(&dir).unwrap();
            let wal = Wal::new(storage);
            let (ckpt, log) = wal.load().unwrap();
            assert_eq!(ckpt.unwrap().epoch, 3);
            assert_eq!(log, vec![rec(4, 9)]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
