//! Pluggable journal sinks.
//!
//! The WAL is written through a narrow [`JournalStorage`] trait so the
//! simulator can journal into memory (fast, corruptible by tests) while
//! real runs and benches journal into a directory. Both sinks share the
//! same framing and the same atomic-checkpoint discipline: the
//! checkpoint is replaced *before* the log is truncated, so a crash
//! between the two steps leaves a checkpoint plus a log whose records
//! are all at or below the checkpoint epoch — replay skips them.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::JournalError;

/// A sink for framed journal lines and checkpoint documents.
pub trait JournalStorage: Send {
    /// Appends one framed line to the log and flushes it.
    fn append_line(&mut self, line: &str) -> Result<(), JournalError>;
    /// Reads back every log line, in append order.
    fn read_log(&self) -> Result<Vec<String>, JournalError>;
    /// Atomically replaces the checkpoint document (framed body).
    fn write_checkpoint(&mut self, body: &str) -> Result<(), JournalError>;
    /// Reads the checkpoint document, if one was ever written.
    fn read_checkpoint(&self) -> Result<Option<String>, JournalError>;
    /// Drops all log lines (called after a checkpoint install).
    fn truncate_log(&mut self) -> Result<(), JournalError>;
}

#[derive(Debug, Default)]
struct MemoryBacking {
    log: Vec<String>,
    checkpoint: Option<String>,
}

/// In-memory storage for tests and the simulator.
///
/// Clones share the same backing store, so a test can keep one handle
/// to corrupt or truncate the log while the scheduler writes through
/// another — the moral equivalent of pulling the disk out from under
/// the RM.
#[derive(Debug, Clone, Default)]
pub struct MemoryStorage {
    inner: Arc<Mutex<MemoryBacking>>,
}

impl MemoryStorage {
    /// New empty storage.
    pub fn new() -> MemoryStorage {
        MemoryStorage::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut MemoryBacking) -> R) -> R {
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Test hook: the raw log lines as stored.
    pub fn log_lines(&self) -> Vec<String> {
        self.with(|b| b.log.clone())
    }

    /// Test hook: replaces the raw log lines (to inject corruption or a
    /// torn tail).
    pub fn set_log_lines(&self, lines: Vec<String>) {
        self.with(|b| b.log = lines);
    }

    /// Test hook: the raw checkpoint body as stored.
    pub fn checkpoint_body(&self) -> Option<String> {
        self.with(|b| b.checkpoint.clone())
    }

    /// Test hook: replaces the raw checkpoint body.
    pub fn set_checkpoint_body(&self, body: Option<String>) {
        self.with(|b| b.checkpoint = body);
    }
}

impl JournalStorage for MemoryStorage {
    fn append_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.with(|b| b.log.push(line.to_string()));
        Ok(())
    }

    fn read_log(&self) -> Result<Vec<String>, JournalError> {
        Ok(self.log_lines())
    }

    fn write_checkpoint(&mut self, body: &str) -> Result<(), JournalError> {
        self.with(|b| b.checkpoint = Some(body.to_string()));
        Ok(())
    }

    fn read_checkpoint(&self) -> Result<Option<String>, JournalError> {
        Ok(self.checkpoint_body())
    }

    fn truncate_log(&mut self) -> Result<(), JournalError> {
        self.with(|b| b.log.clear());
        Ok(())
    }
}

/// Directory-backed storage: `wal.log` (append-only, one framed line
/// per record) plus `checkpoint.json` (replaced via write-to-temp +
/// rename so a crash mid-write never corrupts the installed
/// checkpoint).
///
/// Appends are flushed to the OS on every record. A production RM
/// would `fsync` here as well; this implementation stops at `flush`
/// because the workspace's failure model (the simulator's `RmCrash`)
/// kills the process state, not the kernel page cache.
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    log: Option<File>,
}

impl FileStorage {
    /// Opens (creating if needed) a journal directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStorage, JournalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        Ok(FileStorage { dir, log: None })
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.json")
    }

    fn log_file(&mut self) -> Result<&mut File, JournalError> {
        if self.log.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.log_path())
                .map_err(io_err)?;
            self.log = Some(f);
        }
        Ok(self.log.as_mut().expect("just opened"))
    }
}

fn io_err(e: std::io::Error) -> JournalError {
    JournalError::Io(e.to_string())
}

impl JournalStorage for FileStorage {
    fn append_line(&mut self, line: &str) -> Result<(), JournalError> {
        let f = self.log_file()?;
        f.write_all(line.as_bytes()).map_err(io_err)?;
        f.write_all(b"\n").map_err(io_err)?;
        f.flush().map_err(io_err)
    }

    fn read_log(&self) -> Result<Vec<String>, JournalError> {
        let path = self.log_path();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let mut text = String::new();
        File::open(path)
            .map_err(io_err)?
            .read_to_string(&mut text)
            .map_err(io_err)?;
        Ok(text.lines().map(str::to_string).collect())
    }

    fn write_checkpoint(&mut self, body: &str) -> Result<(), JournalError> {
        let tmp = self.dir.join("checkpoint.json.tmp");
        std::fs::write(&tmp, body).map_err(io_err)?;
        std::fs::rename(&tmp, self.checkpoint_path()).map_err(io_err)
    }

    fn read_checkpoint(&self) -> Result<Option<String>, JournalError> {
        let path = self.checkpoint_path();
        if !path.exists() {
            return Ok(None);
        }
        let mut text = String::new();
        File::open(path)
            .map_err(io_err)?
            .read_to_string(&mut text)
            .map_err(io_err)?;
        Ok(Some(text.trim_end().to_string()))
    }

    fn truncate_log(&mut self) -> Result<(), JournalError> {
        // Drop the append handle, then recreate the file empty.
        self.log = None;
        File::create(self.log_path()).map_err(io_err)?;
        Ok(())
    }
}
