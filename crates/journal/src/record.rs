//! Log records: one epoch-stamped state mutation per line.
//!
//! The journal speaks primitives (`u64` ids, strings) rather than
//! `medea-cluster` types so the crate stays dependency-free and the
//! on-disk format is decoupled from in-memory representations; the
//! cluster layer owns the conversion in both directions.

use std::fmt::Write as _;

use crate::json::{write_escaped, JsonValue};

/// A single durable state mutation.
///
/// Each variant corresponds to exactly one epoch bump of the cluster
/// state's mutation clock, which is what makes `replay` exact: the
/// restorer pins the clock to `epoch - 1` before applying an op and the
/// op's own touch lands it on `epoch`.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A container was placed (covers both LRA and task containers).
    Place {
        /// Assigned container id.
        container: u64,
        /// Owning application.
        app: u64,
        /// Host node.
        node: u32,
        /// Requested memory, MB.
        memory_mb: u64,
        /// Requested vcores.
        vcores: u32,
        /// Long-running (true) or task (false) execution kind.
        long_running: bool,
        /// Full tag list as stored on the allocation (includes the
        /// `appid:` auto-tag).
        tags: Vec<String>,
    },
    /// A container was released (crash, completion, or migration).
    Release {
        /// Released container id.
        container: u64,
    },
    /// A tag occurrence was added to a node.
    NodeTagAdd {
        /// Target node.
        node: u32,
        /// Tag text.
        tag: String,
    },
    /// A tag occurrence was removed from a node.
    NodeTagRemove {
        /// Target node.
        node: u32,
        /// Tag text.
        tag: String,
    },
    /// Node availability flipped (crash / recover).
    SetAvailable {
        /// Target node.
        node: u32,
        /// New availability.
        available: bool,
    },
    /// A node group was (re-)registered.
    RegisterGroup {
        /// Group name.
        group: String,
        /// Node-id sets of the group.
        sets: Vec<Vec<u32>>,
    },
}

/// An epoch-stamped [`JournalOp`].
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Value of the cluster mutation epoch *after* this op applied.
    pub epoch: u64,
    /// The mutation.
    pub op: JournalOp,
}

impl JournalRecord {
    /// Encodes the record as a single-line JSON payload (unframed).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"epoch\":{},\"op\":{{", self.epoch);
        match &self.op {
            JournalOp::Place {
                container,
                app,
                node,
                memory_mb,
                vcores,
                long_running,
                tags,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"place\",\"container\":{container},\"app\":{app},\"node\":{node},\
                     \"mem\":{memory_mb},\"vcores\":{vcores},\"lr\":{long_running},\"tags\":["
                );
                for (i, t) in tags.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(&mut out, t);
                }
                out.push(']');
            }
            JournalOp::Release { container } => {
                let _ = write!(out, "\"type\":\"release\",\"container\":{container}");
            }
            JournalOp::NodeTagAdd { node, tag } => {
                let _ = write!(out, "\"type\":\"tag_add\",\"node\":{node},\"tag\":");
                write_escaped(&mut out, tag);
            }
            JournalOp::NodeTagRemove { node, tag } => {
                let _ = write!(out, "\"type\":\"tag_remove\",\"node\":{node},\"tag\":");
                write_escaped(&mut out, tag);
            }
            JournalOp::SetAvailable { node, available } => {
                let _ = write!(
                    out,
                    "\"type\":\"set_available\",\"node\":{node},\"available\":{available}"
                );
            }
            JournalOp::RegisterGroup { group, sets } => {
                out.push_str("\"type\":\"register_group\",\"group\":");
                write_escaped(&mut out, group);
                out.push_str(",\"sets\":[");
                for (i, set) in sets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    for (j, n) in set.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{n}");
                    }
                    out.push(']');
                }
                out.push(']');
            }
        }
        out.push_str("}}");
        out
    }

    /// Decodes a record from an unframed JSON payload.
    pub fn decode(payload: &str) -> Result<JournalRecord, String> {
        let doc = JsonValue::parse(payload)?;
        let epoch = doc.req_u64("epoch")?;
        let op = doc
            .get("op")
            .ok_or_else(|| "missing field `op`".to_string())?;
        let kind = op.req_str("type")?;
        let op = match kind {
            "place" => JournalOp::Place {
                container: op.req_u64("container")?,
                app: op.req_u64("app")?,
                node: op.req_u32("node")?,
                memory_mb: op.req_u64("mem")?,
                vcores: op.req_u32("vcores")?,
                long_running: op.req_bool("lr")?,
                tags: decode_string_arr(op.req_arr("tags")?)?,
            },
            "release" => JournalOp::Release {
                container: op.req_u64("container")?,
            },
            "tag_add" => JournalOp::NodeTagAdd {
                node: op.req_u32("node")?,
                tag: op.req_str("tag")?.to_string(),
            },
            "tag_remove" => JournalOp::NodeTagRemove {
                node: op.req_u32("node")?,
                tag: op.req_str("tag")?.to_string(),
            },
            "set_available" => JournalOp::SetAvailable {
                node: op.req_u32("node")?,
                available: op.req_bool("available")?,
            },
            "register_group" => JournalOp::RegisterGroup {
                group: op.req_str("group")?.to_string(),
                sets: op
                    .req_arr("sets")?
                    .iter()
                    .map(|s| {
                        s.as_arr()
                            .ok_or_else(|| "non-array group set".to_string())?
                            .iter()
                            .map(|n| n.as_u32().ok_or_else(|| "non-u32 node id".to_string()))
                            .collect()
                    })
                    .collect::<Result<Vec<Vec<u32>>, String>>()?,
            },
            other => return Err(format!("unknown op type `{other}`")),
        };
        Ok(JournalRecord { epoch, op })
    }
}

pub(crate) fn decode_string_arr(items: &[JsonValue]) -> Result<Vec<String>, String> {
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "non-string array element".to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rec: JournalRecord) {
        let enc = rec.encode();
        let dec = JournalRecord::decode(&enc).unwrap();
        assert_eq!(dec, rec, "payload: {enc}");
    }

    #[test]
    fn all_ops_round_trip() {
        round_trip(JournalRecord {
            epoch: 12,
            op: JournalOp::Place {
                container: u64::MAX,
                app: 3,
                node: 17,
                memory_mb: 2048,
                vcores: 4,
                long_running: true,
                tags: vec!["hbase".into(), "appid:3".into(), "we\"ird\\tag".into()],
            },
        });
        round_trip(JournalRecord {
            epoch: 0,
            op: JournalOp::Release { container: 5 },
        });
        round_trip(JournalRecord {
            epoch: 9,
            op: JournalOp::NodeTagAdd {
                node: 0,
                tag: "fault-domain".into(),
            },
        });
        round_trip(JournalRecord {
            epoch: 10,
            op: JournalOp::NodeTagRemove {
                node: 4,
                tag: "fault-domain".into(),
            },
        });
        round_trip(JournalRecord {
            epoch: 11,
            op: JournalOp::SetAvailable {
                node: 7,
                available: false,
            },
        });
        round_trip(JournalRecord {
            epoch: 13,
            op: JournalOp::RegisterGroup {
                group: "service-unit".into(),
                sets: vec![vec![0, 1], vec![2, 3], vec![]],
            },
        });
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(JournalRecord::decode("{}").is_err());
        assert!(JournalRecord::decode(r#"{"epoch":1}"#).is_err());
        assert!(JournalRecord::decode(r#"{"epoch":1,"op":{"type":"nope"}}"#).is_err());
        assert!(
            JournalRecord::decode(r#"{"epoch":1,"op":{"type":"release"}}"#).is_err(),
            "release without container id"
        );
    }
}
