//! Minimal JSON reader/writer for journal payloads.
//!
//! The workspace is hermetic (no external crates), so the journal ships
//! its own JSON layer in the same spirit as `medea-obs`: hand-rolled
//! writers on [`std::fmt::Write`] plus a small recursive-descent parser
//! for the subset the journal actually emits — objects, arrays,
//! strings, booleans, `null`, and **unsigned integers**. Floats and
//! negative numbers are rejected on read: every numeric field in the
//! journal format is a `u64`/`u32`, and parsing through `f64` would
//! silently round container ids above 2^53.

use std::fmt::Write as _;

/// A parsed JSON value (journal subset: integers only).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (the only number shape the journal emits).
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The value as `u64`, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u32`, if it is a number that fits.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a key, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mandatory-field helpers: error out with the missing key's name so
    /// corrupt records report *what* is wrong, not just *that*.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing or non-integer field `{key}`"))
    }

    /// Mandatory `u32` field.
    pub fn req_u32(&self, key: &str) -> Result<u32, String> {
        self.get(key)
            .and_then(JsonValue::as_u32)
            .ok_or_else(|| format!("missing or out-of-range u32 field `{key}`"))
    }

    /// Mandatory boolean field.
    pub fn req_bool(&self, key: &str) -> Result<bool, String> {
        self.get(key)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("missing or non-boolean field `{key}`"))
    }

    /// Mandatory string field.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }

    /// Mandatory array field.
    pub fn req_arr(&self, key: &str) -> Result<&[JsonValue], String> {
        self.get(key)
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("missing or non-array field `{key}`"))
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_lit("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_lit("null") => Ok(JsonValue::Null),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(format!(
                "negative number at byte {} (journal numbers are unsigned)",
                self.pos
            )),
            other => Err(format!("unexpected input {:?} at byte {}", other, self.pos)),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (journal numbers are integers)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "truncated escape at end of input".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat_lit("\\u") {
                                    return Err("unpaired high surrogate".to_string());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("invalid code point {cp:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", char::from(other))),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(chunk).map_err(|_| "non-ASCII \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_journal_shapes() {
        let v = JsonValue::parse(r#"{"epoch":7,"op":{"type":"release","container":18446744073709551615},"ok":true,"tags":["a","b:c"],"none":null}"#).unwrap();
        assert_eq!(v.req_u64("epoch").unwrap(), 7);
        let op = v.get("op").unwrap();
        assert_eq!(op.req_str("type").unwrap(), "release");
        // u64::MAX survives exactly (an f64 round-trip would corrupt it).
        assert_eq!(op.req_u64("container").unwrap(), u64::MAX);
        assert!(v.req_bool("ok").unwrap());
        assert_eq!(v.req_arr("tags").unwrap().len(), 2);
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "quote\" back\\slash \n tab\t unicode\u{1F600}ctrl\u{0001}";
        let mut doc = String::from("{\"s\":");
        write_escaped(&mut doc, nasty);
        doc.push('}');
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.req_str("s").unwrap(), nasty);
    }

    #[test]
    fn rejects_floats_negatives_and_garbage() {
        assert!(JsonValue::parse("1.5").is_err());
        assert!(JsonValue::parse("1e3").is_err());
        assert!(JsonValue::parse("-2").is_err());
        assert!(JsonValue::parse("{}x").is_err());
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("18446744073709551616").is_err()); // u64::MAX + 1
    }

    #[test]
    fn surrogate_pairs_decode() {
        let escaped = "\"\\ud83d\\ude00\"";
        let v = JsonValue::parse(escaped).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
    }
}
