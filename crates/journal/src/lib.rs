//! `medea-journal` — crash-consistent scheduler state.
//!
//! Medea runs inside the resource manager; if the RM process dies, a
//! purely in-memory `ClusterState` loses every allocation record and
//! the long-running applications it was built to protect. This crate
//! is the durability layer underneath the scheduler:
//!
//! * an **append-only write-ahead log** of state mutations
//!   ([`JournalRecord`]: place / release / retag / availability /
//!   group registration, each stamped with the cluster mutation epoch
//!   it produced),
//! * **checkpoint documents** ([`CheckpointDoc`]) serialized from a
//!   consistent snapshot, installed atomically, after which the log is
//!   truncated,
//! * pluggable [`JournalStorage`] sinks — [`MemoryStorage`] for tests
//!   and the simulator, [`FileStorage`] for real runs and benches,
//! * the [`Wal`] front end: framed, FNV-1a-checksummed lines; `load()`
//!   returns `(checkpoint, log tail)` and refuses corrupt or torn
//!   input outright.
//!
//! Restore itself lives in `medea-cluster` (`ClusterState::restore`),
//! which replays the checkpoint and log tail back into a full state,
//! index and γ caches included. This crate is intentionally
//! zero-dependency and speaks only primitives, in the same hermetic
//! hand-rolled-JSON style as `medea-obs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

mod checkpoint;
mod frame;
mod json;
mod record;
mod storage;
mod wal;

pub use checkpoint::{CheckpointAlloc, CheckpointDoc, CheckpointGroup, CheckpointNode};
pub use frame::{fnv1a64, frame, unframe};
pub use json::JsonValue;
pub use record::{JournalOp, JournalRecord};
pub use storage::{FileStorage, JournalStorage, MemoryStorage};
pub use wal::{JournalStats, Wal};

/// Errors surfaced by journal storage, framing, and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Underlying storage failed (message carries the OS error text).
    Io(String),
    /// A stored line failed checksum or decode. `line` is 1-based for
    /// log records and 0 for the checkpoint document.
    Corrupt {
        /// Offending line (0 = checkpoint).
        line: usize,
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal io error: {msg}"),
            JournalError::Corrupt { line: 0, reason } => {
                write!(f, "journal corrupt: checkpoint: {reason}")
            }
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at log line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}
