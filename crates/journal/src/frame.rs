//! Checksummed line framing.
//!
//! Every persisted line — log records and the checkpoint document — is
//! framed as `<payload>#<16-hex-digit FNV-1a-64 of payload>`. The
//! payload is JSON and JSON strings escape all control characters, so
//! the payload never contains a raw newline; `#` *can* appear inside
//! the payload, which is why unframing splits on the **last** `#`.
//! A frame that fails the checksum (bit rot) or is missing its trailer
//! (torn final write) is reported as corrupt — restore rejects the
//! journal rather than silently replaying a prefix.

use crate::JournalError;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Frames a payload for storage: `payload#checksum`.
pub fn frame(payload: &str) -> String {
    format!("{payload}#{:016x}", fnv1a64(payload.as_bytes()))
}

/// Verifies and strips the checksum trailer of a stored line.
pub fn unframe(line: &str, line_no: usize) -> Result<&str, JournalError> {
    let corrupt = |reason: String| JournalError::Corrupt {
        line: line_no,
        reason,
    };
    let (payload, sum) = line
        .rsplit_once('#')
        .ok_or_else(|| corrupt("missing checksum trailer (torn write?)".to_string()))?;
    if sum.len() != 16 || !sum.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(corrupt(format!("malformed checksum trailer `{sum}`")));
    }
    let want = u64::from_str_radix(sum, 16).expect("validated hex");
    let got = fnv1a64(payload.as_bytes());
    if want != got {
        return Err(corrupt(format!(
            "checksum mismatch: stored {want:016x}, computed {got:016x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = r#"{"epoch":3,"op":{"type":"release","container":9}}"#;
        let line = frame(payload);
        assert_eq!(unframe(&line, 1).unwrap(), payload);
    }

    #[test]
    fn payload_hash_char_splits_on_last() {
        let payload = r#"{"tag":"shard#3"}"#;
        let line = frame(payload);
        assert_eq!(unframe(&line, 1).unwrap(), payload);
    }

    #[test]
    fn corruption_detected() {
        let line = frame("{\"a\":1}");
        // Flip one payload byte.
        let mut bad = line.clone().into_bytes();
        bad[2] ^= 0x20;
        let bad = String::from_utf8(bad).unwrap();
        assert!(unframe(&bad, 7).is_err());
        // Truncated trailer.
        assert!(unframe(&line[..line.len() - 3], 7).is_err());
        // No trailer at all.
        assert!(unframe("{\"a\":1}", 7).is_err());
    }
}
