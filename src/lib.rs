//! # Medea
//!
//! A complete Rust reproduction of *"Medea: Scheduling of Long Running
//! Applications in Shared Production Clusters"* (EuroSys 2018): an
//! expressive placement-constraint language over container tags and node
//! groups, an ILP-based LRA scheduler with global objectives, heuristic
//! and baseline schedulers, a YARN-like task scheduler, the two-scheduler
//! integration, and the simulation substrate used to reproduce every
//! table and figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name so applications can depend on `medea` alone.
//!
//! - [`cluster`] — nodes, resources, node groups, tags ([`medea_cluster`]);
//! - [`constraints`] — the §4 constraint language ([`medea_constraints`]);
//! - [`scheduler`] — the §3/§5 schedulers ([`medea_core`]);
//! - [`solver`] — the MILP engine ([`medea_solver`]);
//! - [`sim`] — simulator, workloads, models ([`medea_sim`]).
//!
//! # Quickstart
//!
//! ```
//! use medea::prelude::*;
//!
//! // A 8-node cluster in 2 racks.
//! let cluster = ClusterState::homogeneous(8, Resources::new(16 * 1024, 16), 2);
//! let mut medea = MedeaScheduler::new(cluster, LraAlgorithm::Ilp, 10);
//!
//! // A 4-container service that wants one container per node.
//! let app = ApplicationId(1);
//! let req = LraRequest::uniform(
//!     app,
//!     4,
//!     Resources::new(2048, 1),
//!     vec![Tag::new("svc")],
//!     vec![PlacementConstraint::anti_affinity("svc", "svc", NodeGroupId::node())],
//! );
//! medea.submit_lra(req, 0).unwrap();
//! let deployed = medea.tick(0);
//! assert_eq!(deployed.len(), 1);
//! assert_eq!(deployed[0].containers.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use medea_cluster as cluster;
pub use medea_constraints as constraints;
pub use medea_core as scheduler;
pub use medea_sim as sim;
pub use medea_solver as solver;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use medea_cluster::{
        ApplicationId, ClusterState, ContainerId, ContainerRequest, ExecutionKind, Node,
        NodeGroupId, NodeGroups, NodeId, Resources, Tag, TagMultiset,
    };
    pub use medea_constraints::{
        parse_constraint, Cardinality, ConstraintManager, PlacementConstraint, TagConstraint,
        TagConstraintExpr, TagExpr,
    };
    pub use medea_core::{
        IlpConfig, Locality, LraAlgorithm, LraDeployment, LraRequest, LraScheduler, MedeaScheduler,
        MigrationConfig, MigrationController, ObjectiveWeights, PlacementOutcome, QueueConfig,
        QueuePolicy, TaskJobRequest, TaskScheduler,
    };
}
