//! `medea_demo` — schedule an ad-hoc application from the command line
//! using the paper's constraint syntax.
//!
//! ```text
//! cargo run --release --bin medea_demo -- \
//!     --nodes 16 --racks 4 --containers 6 --mem 2048 --tag web \
//!     "{web, {web, 0, 0}, node}" \
//!     "{web, {web, 1, ∞}, rack}"
//! ```
//!
//! Builds a homogeneous cluster, parses each positional argument as a
//! placement constraint, places the application with Medea-ILP, and
//! prints the placement with a per-constraint satisfaction report.

use medea::prelude::*;
use medea_constraints::evaluate_constraint;

struct Args {
    nodes: usize,
    racks: usize,
    containers: usize,
    mem: u64,
    tag: String,
    constraints: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 16,
        racks: 4,
        containers: 4,
        mem: 2048,
        tag: "app".to_string(),
        constraints: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "--nodes" => args.nodes = take("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--racks" => args.racks = take("--racks")?.parse().map_err(|e| format!("{e}"))?,
            "--containers" => {
                args.containers = take("--containers")?.parse().map_err(|e| format!("{e}"))?
            }
            "--mem" => args.mem = take("--mem")?.parse().map_err(|e| format!("{e}"))?,
            "--tag" => args.tag = take("--tag")?,
            "--help" | "-h" => {
                println!(
                    "usage: medea_demo [--nodes N] [--racks R] [--containers C] \
                     [--mem MB] [--tag TAG] [CONSTRAINT ...]\n\
                     CONSTRAINT uses the paper syntax, e.g. \
                     '{{web, {{web, 0, 0}}, node}}'"
                );
                std::process::exit(0);
            }
            other => args.constraints.push(other.to_string()),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut constraints = Vec::new();
    for src in &args.constraints {
        match parse_constraint(src) {
            Ok(c) => {
                println!("parsed: {c}");
                constraints.push(c);
            }
            Err(e) => {
                eprintln!("error parsing '{src}': {e}");
                std::process::exit(2);
            }
        }
    }

    let cluster = ClusterState::homogeneous(args.nodes, Resources::new(16 * 1024, 16), args.racks);
    let mut medea = MedeaScheduler::new(cluster, LraAlgorithm::Ilp, 10);
    let req = LraRequest::uniform(
        ApplicationId(1),
        args.containers,
        Resources::new(args.mem, 1),
        vec![Tag::new(&args.tag)],
        constraints.clone(),
    );
    if let Err(e) = medea.submit_lra(req, 0) {
        eprintln!("submission rejected: {e}");
        std::process::exit(1);
    }
    let deployed = medea.tick(0);
    match deployed.first() {
        Some(d) => {
            println!(
                "placed {} containers in {:?}:",
                d.containers.len(),
                d.algorithm_time
            );
            for (c, n) in d.containers.iter().zip(&d.nodes) {
                let rack = medea
                    .state()
                    .groups()
                    .sets_containing(&NodeGroupId::rack(), *n)
                    .ok()
                    .and_then(|v| v.first().copied());
                println!("  {c} -> {n} (rack {rack:?})");
            }
            for c in &constraints {
                let rep = evaluate_constraint(medea.state(), c);
                println!(
                    "  constraint {c}: {}/{} subjects satisfied",
                    rep.subjects - rep.violated,
                    rep.subjects
                );
            }
        }
        None => {
            println!("the application could not be placed (resubmitted)");
            std::process::exit(1);
        }
    }
}
