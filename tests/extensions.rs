//! Integration tests for the §5.4/§6 extensions: container migration,
//! task-job constraints, the fair queue policy, and the constraint parser
//! — all through the public facade API.

use medea::prelude::*;
use medea::scheduler::QueuePolicy;
use medea_constraints::violation_stats;

#[test]
fn parsed_constraints_drive_real_placements() {
    // Build the whole §2.2 Storm/Memcached affinity story from strings.
    let caf = parse_constraint("{storm, {mem, 1, ∞}, node}").unwrap();
    let mut medea = MedeaScheduler::new(
        ClusterState::homogeneous(8, Resources::new(16 * 1024, 16), 2),
        LraAlgorithm::Ilp,
        10,
    );
    medea
        .submit_lra(
            LraRequest::uniform(
                ApplicationId(1),
                1,
                Resources::new(4096, 2),
                vec![Tag::new("mem")],
                vec![],
            ),
            0,
        )
        .unwrap();
    medea
        .submit_lra(
            LraRequest::uniform(
                ApplicationId(2),
                3,
                Resources::new(2048, 1),
                vec![Tag::new("storm")],
                vec![caf.clone()],
            ),
            0,
        )
        .unwrap();
    let deployed = medea.tick(0);
    assert_eq!(deployed.len(), 2);
    let stats = violation_stats(medea.state(), [&caf]);
    assert_eq!(stats.containers_violating, 0);
}

#[test]
fn migration_repairs_after_churn() {
    // Deploy cleanly, then simulate churn by force-packing new containers
    // next to a constrained service; the migration controller restores
    // the constraint.
    let mut state = ClusterState::homogeneous(6, Resources::new(16 * 1024, 16), 2);
    let caa = parse_constraint("{svc, {svc, 0, 0}, node}").unwrap();
    for n in [0u32, 0, 1] {
        state
            .allocate(
                ApplicationId(1),
                medea_cluster::NodeId(n),
                &ContainerRequest::new(Resources::new(1024, 1), [Tag::new("svc")]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
    }
    let before = violation_stats(&state, [&caa]);
    assert!(before.containers_violating > 0);

    let moves = MigrationController::new(MigrationConfig::default())
        .rebalance(&mut state, std::slice::from_ref(&caa));
    assert!(!moves.is_empty());
    let after = violation_stats(&state, [&caa]);
    assert_eq!(after.containers_violating, 0);
}

#[test]
fn task_jobs_respect_lra_affinity_through_the_pipeline() {
    let mut medea = MedeaScheduler::new(
        ClusterState::homogeneous(8, Resources::new(16 * 1024, 16), 4),
        LraAlgorithm::NodeCandidates,
        10,
    );
    // A Memcached LRA lands somewhere.
    medea
        .submit_lra(
            LraRequest::uniform(
                ApplicationId(1),
                1,
                Resources::new(2048, 1),
                vec![Tag::new("mem")],
                vec![],
            ),
            0,
        )
        .unwrap();
    let deployed = medea.tick(0);
    let mem_node = deployed[0].nodes[0];
    let mem_rack = medea
        .state()
        .groups()
        .sets_containing(&NodeGroupId::rack(), mem_node)
        .unwrap()[0];

    // The §5.4 example: a map/reduce job placed on the same rack as the
    // Memcached application, handled heuristically by the task scheduler.
    let job = TaskJobRequest::new(ApplicationId(50), Resources::new(512, 1), 4)
        .with_tags([Tag::new("mr")])
        .with_constraints([parse_constraint("{mr, {mem, 1, inf}, rack}").unwrap()]);
    medea.submit_tasks(job, 1).unwrap();

    // Heartbeats from every node: allocations must stay in the mem rack.
    let mut allocs = Vec::new();
    for n in medea.state().node_ids().collect::<Vec<_>>() {
        allocs.extend(medea.heartbeat(n, 2));
    }
    assert_eq!(allocs.len(), 4);
    for a in &allocs {
        let rack = medea
            .state()
            .groups()
            .sets_containing(&NodeGroupId::rack(), a.node)
            .unwrap()[0];
        assert_eq!(rack, mem_rack, "task landed outside the mem rack");
    }
}

#[test]
fn fair_queues_share_between_competing_jobs() {
    let cluster = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
    let ts = TaskScheduler::new(vec![QueueConfig::new("default", 1.0, 1.0).fair()]);
    let mut medea = MedeaScheduler::new(cluster, LraAlgorithm::Serial, 10).with_task_scheduler(ts);
    medea
        .submit_tasks(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 8),
            0,
        )
        .unwrap();
    medea
        .submit_tasks(
            TaskJobRequest::new(ApplicationId(2), Resources::new(1024, 1), 8),
            0,
        )
        .unwrap();
    let allocs = medea.heartbeat(NodeId(0), 1);
    let first_six_app1 = allocs
        .iter()
        .take(6)
        .filter(|a| a.app == ApplicationId(1))
        .count();
    assert_eq!(
        first_six_app1, 3,
        "fair policy splits the first slots evenly"
    );
}

#[test]
fn queue_policy_is_configurable_per_queue() {
    // §6: switching scheduler flavour is a configuration change.
    let fifo = QueueConfig::new("a", 0.5, 1.0);
    let fair = QueueConfig::new("b", 0.5, 1.0).fair();
    assert_eq!(fifo.policy, QueuePolicy::Fifo);
    assert_eq!(fair.policy, QueuePolicy::Fair);
}
