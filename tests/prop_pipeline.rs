//! Cross-crate randomized tests: for random clusters and LRA mixes, every
//! scheduling algorithm must uphold the structural invariants of the
//! system — capacity, all-or-nothing placement, and rollback cleanliness.
//!
//! Cases are generated with the workspace's deterministic PRNG
//! (`medea-rand`), so every run exercises the same inputs and failures
//! reproduce from the printed case seed.

use medea::prelude::*;
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

#[derive(Debug, Clone)]
struct RandomLra {
    containers: usize,
    mem: u64,
    anti_affinity: bool,
    max_per_node: u32,
}

fn random_lra(rng: &mut StdRng) -> RandomLra {
    RandomLra {
        containers: rng.random_range(1..8usize),
        mem: rng.random_range(512..4096u64),
        anti_affinity: rng.random_bool(0.5),
        max_per_node: rng.random_range(1..4u32),
    }
}

fn build_requests(lras: &[RandomLra]) -> Vec<LraRequest> {
    lras.iter()
        .enumerate()
        .map(|(i, l)| {
            let tag = Tag::new(format!("svc{i}"));
            let mut constraints = Vec::new();
            if l.anti_affinity {
                constraints.push(PlacementConstraint::anti_affinity(
                    TagExpr::tag(tag.clone()),
                    TagExpr::tag(tag.clone()),
                    NodeGroupId::node(),
                ));
            } else {
                constraints.push(PlacementConstraint::new(
                    TagExpr::tag(tag.clone()),
                    TagExpr::tag(tag.clone()),
                    Cardinality::at_most(l.max_per_node),
                    NodeGroupId::node(),
                ));
            }
            LraRequest::uniform(
                ApplicationId(1000 + i as u64),
                l.containers,
                Resources::new(l.mem, 1),
                vec![tag],
                constraints,
            )
        })
        .collect()
}

/// Every algorithm returns placements that commit within capacity,
/// place all-or-nothing, and leave no residue for unplaced apps.
#[test]
fn placements_respect_structural_invariants() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x70AC_E11E ^ case);
        let n_lras = rng.random_range(1..5usize);
        let lras: Vec<RandomLra> = (0..n_lras).map(|_| random_lra(&mut rng)).collect();
        let nodes = rng.random_range(2..10usize);
        let requests = build_requests(&lras);
        for alg in [
            LraAlgorithm::Ilp,
            LraAlgorithm::NodeCandidates,
            LraAlgorithm::TagPopularity,
            LraAlgorithm::Serial,
            LraAlgorithm::JKube,
            LraAlgorithm::JKubePlusPlus,
            LraAlgorithm::Yarn,
        ] {
            let mut state =
                ClusterState::homogeneous(nodes, Resources::new(8 * 1024, 8), (nodes / 2).max(1));
            let scheduler = LraScheduler::new(alg);
            let outcomes = scheduler.place(&state, &requests, &[]);
            assert_eq!(outcomes.len(), requests.len(), "case {case} {}", alg.name());
            for (req, out) in requests.iter().zip(&outcomes) {
                if let Some(pl) = out.placement() {
                    // All-or-nothing: every container got a node.
                    assert_eq!(pl.nodes.len(), req.containers.len());
                    // Commit must succeed against live state (no
                    // overcommitted proposals from a fresh snapshot).
                    for (c, &n) in req.containers.iter().zip(&pl.nodes) {
                        let r = state.allocate(req.app, n, c, ExecutionKind::LongRunning);
                        assert!(
                            r.is_ok(),
                            "case {case} {}: proposal exceeded capacity on {:?}",
                            alg.name(),
                            n
                        );
                    }
                }
            }
            // Cluster accounting stays exact.
            let allocated: Resources = state.allocations().map(|a| a.resources).sum();
            assert_eq!(state.total_free() + allocated, state.total_capacity());
        }
    }
}

/// The Medea pipeline never loses containers across random submit /
/// complete sequences.
#[test]
fn pipeline_conserves_containers() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x9E37_79B9 ^ case);
        let n_lras = rng.random_range(1..4usize);
        let lras: Vec<RandomLra> = (0..n_lras).map(|_| random_lra(&mut rng)).collect();
        let completions: Vec<bool> = (0..rng.random_range(1..4usize))
            .map(|_| rng.random_bool(0.5))
            .collect();
        let requests = build_requests(&lras);
        let mut medea = MedeaScheduler::new(
            ClusterState::homogeneous(8, Resources::new(8 * 1024, 8), 2),
            LraAlgorithm::NodeCandidates,
            10,
        );
        let mut now = 0u64;
        let mut live: Vec<(ApplicationId, usize)> = Vec::new();
        for req in &requests {
            if medea.submit_lra(req.clone(), now).is_ok() {
                let deployed = medea.tick(now);
                for d in &deployed {
                    live.push((d.app, d.containers.len()));
                }
            }
            now += 10;
        }
        for (i, &complete) in completions.iter().enumerate() {
            if complete && i < live.len() {
                medea.complete_lra(live[i].0);
                live[i].1 = 0;
            }
        }
        let expected: usize = live.iter().map(|&(_, c)| c).sum();
        assert_eq!(medea.state().num_containers(), expected, "case {case}");
    }
}
