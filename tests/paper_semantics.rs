//! Executable versions of the paper's worked examples: every example
//! constraint and tag-model computation printed in §4 is reproduced
//! against a live cluster, so the semantics cannot drift.

use medea::prelude::*;
use medea_constraints::{check_container, parse_constraint};

fn req(mem: u64, tags: &[&str]) -> ContainerRequest {
    ContainerRequest::new(Resources::new(mem, 1), tags.iter().map(|t| Tag::new(*t)))
}

/// §4.1: the HBase tag-set example. "Consider two HBase containers
/// deployed on a node n1: one master with tags {hb, hb_m} and one region
/// server with tags {hb, hb_rs}. Then 𝒯n1 = {hb, hb_m, hb_rs}, with
/// γn1(hb) = 2 and γn1(hb_m) = γn1(hb_rs) = 1."
#[test]
fn section_4_1_node_tag_sets() {
    let mut c = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
    c.allocate(
        ApplicationId(1),
        NodeId(0),
        &req(512, &["hb", "hb_m"]),
        ExecutionKind::LongRunning,
    )
    .unwrap();
    c.allocate(
        ApplicationId(1),
        NodeId(0),
        &req(512, &["hb", "hb_rs"]),
        ExecutionKind::LongRunning,
    )
    .unwrap();
    assert_eq!(c.gamma(NodeId(0), &Tag::new("hb")), 2);
    assert_eq!(c.gamma(NodeId(0), &Tag::new("hb_m")), 1);
    assert_eq!(c.gamma(NodeId(0), &Tag::new("hb_rs")), 1);

    // "Let nodes n1 and n2 belong to rack r1, and assume 𝒯n2 = {hb, hb_rs}
    // ... Then γr1(hb) = 3, γr1(hb_m) = 1, and γr1(hb_rs) = 2."
    // Rack 0 holds nodes {0, 1} in this cluster.
    c.allocate(
        ApplicationId(2),
        NodeId(1),
        &req(512, &["hb", "hb_rs"]),
        ExecutionKind::LongRunning,
    )
    .unwrap();
    assert_eq!(c.gamma_in_set(&NodeGroupId::rack(), 0, &Tag::new("hb")), 3);
    assert_eq!(
        c.gamma_in_set(&NodeGroupId::rack(), 0, &Tag::new("hb_m")),
        1
    );
    assert_eq!(
        c.gamma_in_set(&NodeGroupId::rack(), 0, &Tag::new("hb_rs")),
        2
    );
}

/// §4.2 Caf: "{storm, {hb ∧ mem, 1, ∞}, node} requests each container
/// with tag storm to be placed in the same node with at least one
/// container with tags hb and mem."
#[test]
fn section_4_2_affinity_example() {
    let caf = parse_constraint("{storm, {hb ∧ mem, 1, ∞}, node}").unwrap();
    let mut c = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
    // hb∧mem on node 1; hb alone on node 2 (must NOT satisfy: both tags
    // are required on the same container).
    c.allocate(
        ApplicationId(1),
        NodeId(1),
        &req(512, &["hb", "mem"]),
        ExecutionKind::LongRunning,
    )
    .unwrap();
    c.allocate(
        ApplicationId(2),
        NodeId(2),
        &req(512, &["hb"]),
        ExecutionKind::LongRunning,
    )
    .unwrap();
    let ok = c
        .allocate(
            ApplicationId(3),
            NodeId(1),
            &req(512, &["storm"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    let bad = c
        .allocate(
            ApplicationId(3),
            NodeId(2),
            &req(512, &["storm"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    assert!(check_container(&c, &caf, ok).unwrap().satisfied);
    assert!(!check_container(&c, &caf, bad).unwrap().satisfied);
}

/// §4.2 Caa: "{storm, {hb, 0, 0}, upgrade_domain} requests each storm
/// container to be placed in a different upgrade domain from all hb
/// containers."
#[test]
fn section_4_2_anti_affinity_example() {
    let caa = parse_constraint("{storm, {hb, 0, 0}, upgrade_domain}").unwrap();
    let mut c = ClusterState::homogeneous(6, Resources::new(8192, 8), 2);
    // Three upgrade domains of two nodes each.
    c.register_group(
        NodeGroupId::upgrade_domain(),
        vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(2), NodeId(3)],
            vec![NodeId(4), NodeId(5)],
        ],
    );
    c.allocate(
        ApplicationId(1),
        NodeId(0),
        &req(512, &["hb"]),
        ExecutionKind::LongRunning,
    )
    .unwrap();
    // Same domain as the hb container (node 1 shares domain 0): violated.
    let bad = c
        .allocate(
            ApplicationId(2),
            NodeId(1),
            &req(512, &["storm"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    // Different domain: satisfied.
    let ok = c
        .allocate(
            ApplicationId(2),
            NodeId(4),
            &req(512, &["storm"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    assert!(!check_container(&c, &caa, bad).unwrap().satisfied);
    assert!(check_container(&c, &caa, ok).unwrap().satisfied);
}

/// §4.2 Cca: "{storm, {spark, 0, 5}, rack} requests each storm container
/// to be placed in a rack that has no more than five spark containers."
#[test]
fn section_4_2_cardinality_example() {
    let cca = parse_constraint("{storm, {spark, 0, 5}, rack}").unwrap();
    let mut c = ClusterState::homogeneous(8, Resources::new(16 * 1024, 16), 2);
    // Rack 0 (nodes 0..3) gets six spark containers; rack 1 gets two.
    for i in 0..6 {
        c.allocate(
            ApplicationId(1),
            NodeId(i % 4),
            &req(512, &["spark"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    }
    for i in 4..6 {
        c.allocate(
            ApplicationId(1),
            NodeId(i),
            &req(512, &["spark"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    }
    let overloaded = c
        .allocate(
            ApplicationId(2),
            NodeId(0),
            &req(512, &["storm"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    let fine = c
        .allocate(
            ApplicationId(2),
            NodeId(5),
            &req(512, &["storm"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    assert!(!check_container(&c, &cca, overloaded).unwrap().satisfied);
    assert!(check_container(&c, &cca, fine).unwrap().satisfied);
}

/// §4.2 Ccg: a self-referential group constraint, "no fewer than three
/// and no more than ten Spark containers in a rack" (counting the others:
/// each subject sees the rack's spark population minus itself).
#[test]
fn section_4_2_group_cardinality_example() {
    let ccg = parse_constraint("{spark, {spark, 3, 10}, rack}").unwrap();
    let mut c = ClusterState::homogeneous(8, Resources::new(16 * 1024, 16), 2);
    // Four spark containers in rack 0: each sees 3 others -> satisfied.
    let mut ids = Vec::new();
    for i in 0..4 {
        ids.push(
            c.allocate(
                ApplicationId(1),
                NodeId(i % 4),
                &req(512, &["spark"]),
                ExecutionKind::LongRunning,
            )
            .unwrap(),
        );
    }
    for &id in &ids {
        assert!(check_container(&c, &ccg, id).unwrap().satisfied);
    }
    // A lone spark in rack 1 sees zero others -> below cmin, violated.
    let lone = c
        .allocate(
            ApplicationId(2),
            NodeId(5),
            &req(512, &["spark"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    assert!(!check_container(&c, &ccg, lone).unwrap().satisfied);
}

/// §4.2: "If we want to restrict the constraint to a specific application
/// with ID 0023 ..." — appid-namespaced tags scope constraints.
#[test]
fn section_4_2_appid_scoping() {
    let scoped = parse_constraint("{appid:23 ∧ storm, {appid:23 ∧ hb, 1, ∞}, node}").unwrap();
    let mut c = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
    // App 23's hb on node 0; app 99's hb on node 1.
    c.allocate(
        ApplicationId(23),
        NodeId(0),
        &req(512, &["hb"]),
        ExecutionKind::LongRunning,
    )
    .unwrap();
    c.allocate(
        ApplicationId(99),
        NodeId(1),
        &req(512, &["hb"]),
        ExecutionKind::LongRunning,
    )
    .unwrap();
    // App 23's storm next to the *wrong* app's hb: violated.
    let wrong = c
        .allocate(
            ApplicationId(23),
            NodeId(1),
            &req(512, &["storm"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    let right = c
        .allocate(
            ApplicationId(23),
            NodeId(0),
            &req(512, &["storm"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    assert!(!check_container(&c, &scoped, wrong).unwrap().satisfied);
    assert!(check_container(&c, &scoped, right).unwrap().satisfied);
}

/// §4.1: static machine attributes are just statically-defined tags, so
/// the same constraint machinery expresses "place on machines with GPUs".
#[test]
fn section_4_1_static_attributes_as_tags() {
    let wants_gpu = parse_constraint("{trainer, {gpu, 1, ∞}, node}").unwrap();
    let nodes = vec![
        Node::new(NodeId(0), Resources::new(8192, 8)),
        Node::new(NodeId(1), Resources::new(8192, 8)).with_static_tags([Tag::new("gpu")]),
    ];
    let mut c = ClusterState::with_groups(nodes, NodeGroups::new(2));
    let on_plain = c
        .allocate(
            ApplicationId(1),
            NodeId(0),
            &req(512, &["trainer"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    let on_gpu = c
        .allocate(
            ApplicationId(1),
            NodeId(1),
            &req(512, &["trainer"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
    assert!(!check_container(&c, &wants_gpu, on_plain).unwrap().satisfied);
    assert!(check_container(&c, &wants_gpu, on_gpu).unwrap().satisfied);
}
