//! End-to-end integration tests: the full Medea pipeline across crates —
//! submission, constraint registration, interval scheduling, two-scheduler
//! interaction, conflict resubmission, failure injection, and metrics.

use medea::prelude::*;
use medea::sim::apps;
use medea_constraints::{violation_stats, ConstraintSource};

fn cluster(n: usize, racks: usize) -> ClusterState {
    ClusterState::homogeneous(n, Resources::new(16 * 1024, 16), racks)
}

#[test]
fn full_lifecycle_submit_place_complete() {
    let mut medea = MedeaScheduler::new(cluster(8, 2), LraAlgorithm::Ilp, 10);
    let req = apps::hbase_instance(ApplicationId(1), 6);
    medea.submit_lra(req.clone(), 0).unwrap();
    assert_eq!(medea.constraint_manager().num_apps(), 1);

    let deployed = medea.tick(0);
    assert_eq!(deployed.len(), 1);
    assert_eq!(deployed[0].containers.len(), req.num_containers());
    assert_eq!(medea.state().num_containers(), req.num_containers());

    // Constraint satisfaction end to end.
    let stats = violation_stats(medea.state(), req.constraints.iter());
    assert_eq!(
        stats.containers_violating, 0,
        "fresh cluster must satisfy all"
    );

    // Teardown removes containers and constraints.
    medea.complete_lra(ApplicationId(1));
    assert_eq!(medea.state().num_containers(), 0);
    assert_eq!(medea.constraint_manager().num_apps(), 0);
}

#[test]
fn lras_and_tasks_share_the_cluster_without_interfering() {
    let mut medea = MedeaScheduler::new(cluster(10, 2), LraAlgorithm::NodeCandidates, 10);

    // Tasks first: they allocate on heartbeats immediately (R4).
    medea
        .submit_tasks(
            TaskJobRequest::new(ApplicationId(50), Resources::new(1024, 1), 20),
            0,
        )
        .unwrap();
    let mut task_allocs = Vec::new();
    for n in 0..10u32 {
        task_allocs.extend(medea.heartbeat(NodeId(n), 1));
    }
    assert_eq!(task_allocs.len(), 20);

    // Then an LRA with anti-affinity; both coexist.
    medea
        .submit_lra(
            LraRequest::uniform(
                ApplicationId(1),
                5,
                Resources::new(2048, 1),
                vec![Tag::new("svc")],
                vec![PlacementConstraint::anti_affinity(
                    "svc",
                    "svc",
                    NodeGroupId::node(),
                )],
            ),
            2,
        )
        .unwrap();
    let deployed = medea.tick(10);
    assert_eq!(deployed.len(), 1);
    let nodes: std::collections::HashSet<NodeId> = deployed[0].nodes.iter().copied().collect();
    assert_eq!(nodes.len(), 5, "anti-affinity must spread");
    assert_eq!(medea.state().num_containers(), 25);
}

#[test]
fn operator_constraints_steer_all_algorithms() {
    // The operator bans more than one "noisy" container per node.
    for alg in [
        LraAlgorithm::Ilp,
        LraAlgorithm::NodeCandidates,
        LraAlgorithm::TagPopularity,
    ] {
        let state = cluster(8, 2);
        let scheduler = LraScheduler::new(alg);
        let operator = PlacementConstraint::new(
            "noisy",
            "noisy",
            Cardinality::at_most(0),
            NodeGroupId::node(),
        );
        let req = LraRequest::uniform(
            ApplicationId(2),
            6,
            Resources::new(1024, 1),
            vec![Tag::new("noisy")],
            vec![],
        );
        let out = scheduler.place(
            &state,
            std::slice::from_ref(&req),
            std::slice::from_ref(&operator),
        );
        let pl = out[0].placement().expect("placeable");
        let mut nodes = pl.nodes.clone();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 6, "{alg}: operator cap must spread containers");
    }
}

#[test]
fn constraint_manager_resolves_operator_conflicts_end_to_end() {
    let state = cluster(4, 2);
    let cm = ConstraintManager::new();
    let app = PlacementConstraint::cardinality("w", "w", 0, 9, NodeGroupId::rack());
    let op = PlacementConstraint::cardinality("w", "w", 0, 3, NodeGroupId::rack());
    cm.register_app(ApplicationId(1), vec![app], state.groups())
        .unwrap();
    cm.register_operator(op, state.groups()).unwrap();
    let active = cm.active();
    assert_eq!(active.len(), 1);
    assert_eq!(active[0].source, ConstraintSource::Operator);
}

#[test]
fn conflict_between_placement_and_commit_resubmits() {
    let mut medea = MedeaScheduler::new(cluster(2, 1), LraAlgorithm::Serial, 10);
    // Occupy the whole cluster with tasks.
    medea
        .submit_tasks(
            TaskJobRequest::new(ApplicationId(9), Resources::new(16 * 1024, 1), 2),
            0,
        )
        .unwrap();
    medea.heartbeat(NodeId(0), 0);
    medea.heartbeat(NodeId(1), 0);

    medea
        .submit_lra(
            LraRequest::uniform(
                ApplicationId(1),
                2,
                Resources::new(4096, 1),
                vec![Tag::new("x")],
                vec![],
            ),
            0,
        )
        .unwrap();
    assert!(medea.tick(0).is_empty(), "no room yet");
    assert_eq!(medea.pending_lras(), 1, "resubmitted for the next interval");

    // Free the tasks; the retry lands.
    let tasks: Vec<ContainerId> = medea.state().allocations().map(|a| a.id).collect();
    for t in tasks {
        medea.complete_task("default", t);
    }
    assert_eq!(medea.tick(10).len(), 1);
}

#[test]
fn failure_injection_and_resilient_respread() {
    let mut medea = MedeaScheduler::new(cluster(6, 2), LraAlgorithm::NodeCandidates, 10);
    medea
        .submit_lra(
            LraRequest::uniform(
                ApplicationId(1),
                4,
                Resources::new(1024, 1),
                vec![Tag::new("svc")],
                vec![PlacementConstraint::anti_affinity(
                    "svc",
                    "svc",
                    NodeGroupId::node(),
                )],
            ),
            0,
        )
        .unwrap();
    let deployed = medea.tick(0);
    let lost_node = deployed[0].nodes[0];

    // Fail a node; its containers survive in bookkeeping (the resilience
    // experiments count them as unavailable), and new placements avoid it.
    medea.state_mut().set_available(lost_node, false).unwrap();
    medea
        .submit_lra(
            LraRequest::uniform(
                ApplicationId(2),
                3,
                Resources::new(1024, 1),
                vec![Tag::new("b")],
                vec![],
            ),
            11,
        )
        .unwrap();
    let second = medea.tick(20);
    assert_eq!(second.len(), 1);
    assert!(second[0].nodes.iter().all(|&n| n != lost_node));
}

#[test]
fn simulator_drives_the_whole_stack() {
    use medea::sim::{SimDriver, SimEvent};
    let mut sim = SimDriver::new(cluster(6, 2), LraAlgorithm::Ilp, 1_000);
    sim.start_heartbeats();
    sim.schedule(
        0,
        SimEvent::SubmitLra(apps::tensorflow_instance(ApplicationId(1))),
    );
    sim.schedule(
        100,
        SimEvent::SubmitTasks {
            job: TaskJobRequest::new(ApplicationId(7), Resources::new(512, 1), 8),
            duration: 2_000,
        },
    );
    sim.run_until(20_000);
    assert_eq!(sim.metrics().deployments.len(), 1);
    assert_eq!(sim.metrics().task_latencies.len(), 8);
    // TF instance stays; tasks are gone.
    assert_eq!(sim.medea().state().num_containers(), 11);
}

#[test]
fn stats_track_cycles_and_outcomes() {
    let mut medea = MedeaScheduler::new(cluster(4, 2), LraAlgorithm::Serial, 10);
    medea
        .submit_lra(
            LraRequest::uniform(
                ApplicationId(1),
                2,
                Resources::new(1024, 1),
                vec![Tag::new("a")],
                vec![],
            ),
            0,
        )
        .unwrap();
    medea.tick(0);
    let s = medea.stats();
    assert_eq!(s.cycles, 1);
    assert_eq!(s.lras_deployed, 1);
    assert_eq!(s.lras_unplaced, 0);
}
