#!/usr/bin/env bash
# CI gate for the workspace. Everything runs offline: the workspace has
# no external crates, so any registry access is a regression this script
# must catch.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline (all targets)"
cargo build --release --offline --workspace --benches --tests

echo "==> cargo test (debug)"
cargo test --offline --workspace -q

echo "==> cargo test (release)"
cargo test --release --offline --workspace -q

echo "==> solver correctness gate (differential + certificates + metamorphic + round-trip)"
# Named explicitly so a regression in any of these suites fails the gate
# with an unambiguous step, even though the workspace runs also cover them.
cargo test --release --offline -p medea-core -q --test differential
cargo test --release --offline -p medea-solver -q --test certificates --test metamorphic
cargo test --release --offline -p medea-constraints -q --test prop_constraints

echo "==> index correctness gate (index-vs-scan differential + chaos interplay)"
cargo test --release --offline -p medea-cluster -q --test index_differential
cargo test --release --offline -p medea-sim -q --test chaos_index

echo "==> async pipeline gate (async-vs-sync differential + commit conflicts + chaos)"
cargo test --release --offline -p medea-sim -q --test async_vs_sync
cargo test --release --offline -p medea-core -q --test async_pipeline
cargo test --release --offline -p medea-sim -q --test chaos

echo "==> sharded solving gate (sharded-vs-unsharded differential + cross-shard conflicts)"
cargo test --release --offline -p medea-core -q --test shard_differential
cargo test --release --offline -p medea-core -q --test shard_conflicts

echo "==> failover gate (journal round-trips + work-preserving restart + crash differential + determinism)"
cargo test --release --offline -p medea-cluster -q --test checkpoint_restore
cargo test --release --offline -p medea-core -q --test restart
cargo test --release --offline -p medea-sim -q --test failover --test determinism

echo "==> solver benchmark smoke (writes BENCH_solver.json, mode=smoke)"
cargo run --release --offline -p medea-bench --bin solver_bench -- --smoke

echo "==> cluster-scale benchmark smoke (writes BENCH_scale.json, mode=smoke)"
cargo run --release --offline -p medea-bench --bin scale_bench -- --smoke

echo "==> pipeline benchmark smoke (writes BENCH_pipeline.json, mode=smoke)"
cargo run --release --offline -p medea-bench --bin pipeline_bench -- --smoke

echo "==> recovery benchmark smoke (writes BENCH_recovery.json, mode=smoke)"
cargo run --release --offline -p medea-bench --bin recovery_bench -- --smoke

echo "==> chaos smoke (fixed-seed fault injection + recovery)"
cargo run --release --offline -p medea-bench --bin fig8_resilience -- --smoke

echo "CI gate passed."
