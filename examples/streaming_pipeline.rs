//! The §2.2 motivating scenario: a Storm topology that joins a tweet
//! stream against user profiles in Memcached. Shows how intra- and
//! inter-application affinity constraints cut the modeled lookup latency,
//! reproducing the Fig. 2a effect through the public API.
//!
//! Run with `cargo run --release --example streaming_pipeline`.

use medea::prelude::*;
use medea::sim::apps::{memcached_instance, storm_instance, StormAffinity};
use medea::sim::PerfModel;

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    let model = PerfModel::new();

    for (label, policy) in [
        ("no-constraints", StormAffinity::None),
        ("intra-only", StormAffinity::IntraOnly),
        ("intra-inter", StormAffinity::IntraInter),
    ] {
        let cluster = ClusterState::homogeneous(24, Resources::new(16 * 1024, 16), 3);
        let mut medea = MedeaScheduler::new(cluster, LraAlgorithm::Ilp, 10);

        // Memcached holds the user profiles; Storm holds five supervisors.
        let mem = memcached_instance(ApplicationId(1));
        let storm = storm_instance(ApplicationId(2), policy);
        medea.submit_lra(mem, 0).unwrap();
        medea.submit_lra(storm, 0).unwrap();
        let deployed = medea.tick(0);
        assert_eq!(deployed.len(), 2, "both applications must deploy");

        // Find the memcached node and measure supervisor collocation.
        let state = medea.state();
        let mem_node = state
            .allocations()
            .find(|a| a.tags.contains(&Tag::new("mem")))
            .map(|a| a.node)
            .expect("memcached runs");
        let collocated: Vec<bool> = state
            .allocations()
            .filter(|a| a.tags.contains(&Tag::new("storm_sup")))
            .map(|a| a.node == mem_node)
            .collect();

        let samples: Vec<f64> = collocated
            .iter()
            .enumerate()
            .flat_map(|(i, &c)| model.lookup_latency_samples(c, 500, i as u64))
            .collect();
        println!(
            "{label:<15} supervisors with memcached: {}/{}  mean lookup {:.1} ms",
            collocated.iter().filter(|&&c| c).count(),
            collocated.len(),
            mean(&samples)
        );
    }
    println!(
        "\nOnly the intra+inter policy collocates the supervisors with \
         Memcached, which removes the network hop from the lookup path \
         (the paper measures 4.6x; the model reproduces that ratio)."
    );
}
