//! Resilience through high-level constraints (§2.3/§7.3): spread an
//! application across *service units* without knowing the cluster layout,
//! then replay a synthetic 15-day unavailability trace and compare the
//! worst-case container loss against a spread-unaware placement.
//!
//! Run with `cargo run --release --example resilient_placement`.

use medea::prelude::*;
use medea::sim::{FailureParams, UnavailabilityTrace};

const SUS: usize = 10;
const NODES_PER_SU: usize = 8;

fn cluster_with_service_units() -> ClusterState {
    let mut cluster =
        ClusterState::homogeneous(SUS * NODES_PER_SU, Resources::new(16 * 1024, 16), 4);
    let sets: Vec<Vec<NodeId>> = (0..SUS)
        .map(|su| {
            (0..NODES_PER_SU)
                .map(|i| NodeId((su * NODES_PER_SU + i) as u32))
                .collect()
        })
        .collect();
    cluster.register_group(NodeGroupId::service_unit(), sets);
    cluster
}

/// Deploys a 30-container service; `spread` adds the SU cardinality
/// constraint. Returns containers per service unit.
fn deploy(spread: bool) -> Vec<u32> {
    let cluster = cluster_with_service_units();
    let mut medea = MedeaScheduler::new(cluster, LraAlgorithm::NodeCandidates, 10);
    let app = ApplicationId(1);
    let constraints = if spread {
        // "No more than 3 svc containers per service unit" — note the
        // constraint never names a machine or SU: it survives cluster
        // reconfiguration and reveals nothing about the layout (R2).
        vec![PlacementConstraint::new(
            "svc",
            "svc",
            Cardinality::at_most(2),
            NodeGroupId::service_unit(),
        )]
    } else {
        Vec::new()
    };
    medea
        .submit_lra(
            LraRequest::uniform(
                app,
                30,
                Resources::new(2048, 1),
                vec![Tag::new("svc")],
                constraints,
            ),
            0,
        )
        .unwrap();
    let deployed = medea.tick(0);
    assert_eq!(deployed.len(), 1, "service must deploy");

    let mut per_su = vec![0u32; SUS];
    for &cid in medea.state().app_containers(app) {
        let node = medea.state().allocation(cid).unwrap().node;
        per_su[node.0 as usize / NODES_PER_SU] += 1;
    }
    per_su
}

fn main() {
    let trace = UnavailabilityTrace::generate(
        &FailureParams {
            service_units: SUS,
            ..FailureParams::default()
        },
        2018,
    );

    for (label, spread) in [("spread (SU cardinality)", true), ("unconstrained", false)] {
        let per_su = deploy(spread);
        let worst = (0..trace.hours())
            .map(|h| trace.app_unavailability(h, &per_su))
            .fold(0.0f64, f64::max);
        println!(
            "{label:<26} containers/SU {:?}  worst-hour unavailability {:.1}%",
            per_su,
            worst * 100.0
        );
    }
    println!(
        "\nSpreading caps the blast radius of a service-unit outage: with at \
         most 3 containers per SU, even a 100% SU failure costs ~10% of the \
         service, versus most of it for a packed placement."
    );
}
