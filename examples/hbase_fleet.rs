//! Deploy a fleet of HBase instances with the paper's §7.1 constraints on
//! a GridMix-loaded cluster, compare the ILP scheduler against the
//! constraint-unaware YARN baseline, and report violations and modeled
//! YCSB performance.
//!
//! Run with `cargo run --release --example hbase_fleet`.

use medea::prelude::*;
use medea::sim::apps;
use medea::sim::{fill_with_batch, PerfModel, PlacementProfile};
use medea_constraints::violation_stats;

fn deploy(alg: LraAlgorithm) -> (ClusterState, Vec<PlacementConstraint>, Vec<ApplicationId>) {
    let mut cluster = ClusterState::homogeneous(60, Resources::new(16 * 1024, 16), 6);
    // Background batch load at 40% of cluster memory.
    fill_with_batch(&mut cluster, 0.4, 7);

    let scheduler = LraScheduler::new(alg);
    let mut constraints = Vec::new();
    let mut deployed = Vec::new();
    for i in 0..8u64 {
        let req = apps::hbase_instance(ApplicationId(10 + i), 10);
        let out = scheduler.place(&cluster, std::slice::from_ref(&req), &constraints);
        if let Some(pl) = out[0].placement() {
            for (c, &n) in req.containers.iter().zip(&pl.nodes) {
                cluster
                    .allocate(req.app, n, c, ExecutionKind::LongRunning)
                    .expect("placement fits");
            }
            constraints.extend(req.constraints.iter().cloned());
            deployed.push(req.app);
        } else {
            eprintln!("instance {} could not be placed", req.app);
        }
    }
    (cluster, constraints, deployed)
}

fn main() {
    let model = PerfModel::io_bound();
    for alg in [LraAlgorithm::Ilp, LraAlgorithm::Yarn] {
        let (state, constraints, deployed) = deploy(alg);
        let stats = violation_stats(&state, constraints.iter());
        let worker = Tag::new("hb_rs");
        let mean_slowdown: f64 = deployed
            .iter()
            .map(|&app| model.slowdown(&PlacementProfile::of_app(&state, app, &worker)))
            .sum::<f64>()
            / deployed.len().max(1) as f64;
        println!(
            "{:<10} deployed {:2} instances | constraint violations {:5.1}% | \
             mean modeled slowdown {:.2}x",
            alg.name(),
            deployed.len(),
            stats.violating_fraction() * 100.0,
            mean_slowdown
        );
    }
    println!(
        "\nThe ILP keeps region servers within the 2-per-node cardinality \
         cap and each instance inside one rack; YARN ignores both, which \
         shows up as violations and a higher modeled slowdown."
    );
}
