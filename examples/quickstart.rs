//! Quickstart: submit one LRA with placement constraints and a batch job
//! to Medea's two-scheduler pipeline, and watch both get placed.
//!
//! Run with `cargo run --example quickstart`.

use medea::prelude::*;

fn main() {
    // A small cluster: 8 nodes x <16 GB, 16 cores> in 2 racks.
    let cluster = ClusterState::homogeneous(8, Resources::new(16 * 1024, 16), 2);
    let mut medea = MedeaScheduler::new(cluster, LraAlgorithm::Ilp, 10_000);

    // A web service: 4 replicas, at most one per node (anti-affinity for
    // fault tolerance), each collocated with a cache container.
    let web = ApplicationId(1);
    let cache = ApplicationId(2);
    medea
        .submit_lra(
            LraRequest::uniform(
                cache,
                4,
                Resources::new(1024, 1),
                vec![Tag::new("cache")],
                vec![PlacementConstraint::anti_affinity(
                    "cache",
                    "cache",
                    NodeGroupId::node(),
                )],
            ),
            0,
        )
        .expect("valid constraints");
    medea
        .submit_lra(
            LraRequest::uniform(
                web,
                4,
                Resources::new(2048, 2),
                vec![Tag::new("web")],
                vec![
                    PlacementConstraint::anti_affinity("web", "web", NodeGroupId::node()),
                    PlacementConstraint::affinity("web", "cache", NodeGroupId::node()),
                ],
            ),
            0,
        )
        .expect("valid constraints");

    // The LRA scheduler runs at its interval and places both apps at once
    // (which is what lets it satisfy the web->cache affinity).
    let deployed = medea.tick(0);
    println!("deployed {} LRAs:", deployed.len());
    for d in &deployed {
        println!(
            "  {:?} -> nodes {:?} (algorithm time {:?})",
            d.app,
            d.nodes.iter().map(|n| n.0).collect::<Vec<_>>(),
            d.algorithm_time
        );
    }

    // Check the affinity actually holds.
    let state = medea.state();
    for &cid in state.app_containers(web) {
        let alloc = state.allocation(cid).unwrap();
        let caches = state.gamma(alloc.node, &Tag::new("cache"));
        println!(
            "  web container on node {} has {} cache neighbour(s)",
            alloc.node.0, caches
        );
        assert!(caches >= 1, "web/cache affinity should hold");
    }

    // Task-based jobs flow through the heartbeat path, untouched by the
    // LRA machinery.
    medea
        .submit_tasks(
            TaskJobRequest::new(ApplicationId(100), Resources::new(512, 1), 16),
            5,
        )
        .unwrap();
    let mut allocated = 0;
    for n in 0..8u32 {
        allocated += medea.heartbeat(NodeId(n), 6).len();
    }
    println!("task containers allocated on first heartbeat wave: {allocated}");
    assert_eq!(allocated, 16);
}
